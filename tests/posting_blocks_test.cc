#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "index/list_cursor.h"
#include "test_util.h"

namespace simsel {
namespace {

// Block-summary and span-API edge cases: partial last blocks, windows that
// fall between blocks, tied length runs across a block seam, exhausted
// cursors, and accounting parity between span and per-posting consumption.

InvertedIndexOptions SmallBlocks() {
  InvertedIndexOptions opts;
  opts.block_postings = 8;
  opts.page_bytes = 128;  // 16 postings per page
  opts.skip_fanout = 8;
  return opts;
}

struct Fixture {
  explicit Fixture(size_t n = 300, uint64_t seed = 77,
                   InvertedIndexOptions opts = SmallBlocks())
      : tokenizer(TokenizerOptions{.q = 3}),
        collection(Collection::Build(
            testing_util::MakeWordRecords(n, seed), tokenizer)),
        measure(collection),
        index(InvertedIndex::Build(collection, measure, opts)) {
    for (TokenId t = 0; t < index.num_tokens(); ++t) {
      if (index.ListSize(t) > index.ListSize(longest)) longest = t;
    }
    EXPECT_GT(index.ListSize(longest), 16u);
  }

  Tokenizer tokenizer;
  Collection collection;
  IdfMeasure measure;
  InvertedIndex index;
  TokenId longest = 0;
};

TEST(PostingBlocksTest, SummariesCoverEveryListIncludingPartialLastBlock) {
  Fixture f;
  const size_t bp = f.index.block_postings();
  ASSERT_EQ(bp, 8u);
  bool saw_partial = false;
  for (TokenId t = 0; t < f.index.num_tokens(); ++t) {
    const size_t n = f.index.ListSize(t);
    ASSERT_EQ(f.index.NumBlocks(t), (n + bp - 1) / bp) << "token " << t;
    if (n % bp != 0) saw_partial = true;
    const PostingBlockSummary* blocks = f.index.Blocks(t);
    const float* lens = f.index.LenLens(t);
    const uint32_t* ids = f.index.LenIds(t);
    for (size_t b = 0; b < f.index.NumBlocks(t); ++b) {
      const size_t first = b * bp;
      const size_t last = std::min(n, first + bp) - 1;
      EXPECT_EQ(blocks[b].min_len, lens[first]);
      EXPECT_EQ(blocks[b].max_len, lens[last]);
      EXPECT_EQ(blocks[b].first_id, ids[first]);
      EXPECT_EQ(blocks[b].last_id, ids[last]);
    }
  }
  EXPECT_TRUE(saw_partial) << "fixture never produced a partial last block";
}

TEST(PostingBlocksTest, SeekMatchesLinearScanEverywhere) {
  Fixture f;
  const float* lens = f.index.LenLens(f.longest);
  const size_t n = f.index.ListSize(f.longest);
  // Probe at every posting's length, between lengths, and past both ends.
  std::vector<float> targets(lens, lens + n);
  for (size_t i = 0; i + 1 < n; ++i) {
    targets.push_back((lens[i] + lens[i + 1]) / 2.0f);
  }
  targets.push_back(0.0f);
  targets.push_back(lens[n - 1] * 2.0f);
  for (float target : targets) {
    const size_t ge = static_cast<size_t>(
        std::lower_bound(lens, lens + n, target) - lens);
    const size_t gt = static_cast<size_t>(
        std::upper_bound(lens, lens + n, target) - lens);
    EXPECT_EQ(f.index.SeekFirstGE(f.longest, target), ge) << target;
    EXPECT_EQ(f.index.SeekFirstGT(f.longest, target), gt) << target;
  }
}

TEST(PostingBlocksTest, TiedLengthRunAcrossBlockSeam) {
  // 40 sets sharing one token; lengths tied in long runs straddling the
  // 8-posting block boundary: 10x len 1.0, 20x len 2.0, 10x len 3.0.
  std::vector<std::string> records(40, "zz zz");
  std::vector<float> set_lengths(40);
  for (size_t s = 0; s < 40; ++s) {
    set_lengths[s] = s < 10 ? 1.0f : (s < 30 ? 2.0f : 3.0f);
  }
  TokenizerOptions tok_opts;
  tok_opts.kind = TokenizerKind::kWord;
  Tokenizer tokenizer(tok_opts);
  Collection collection = Collection::Build(records, tokenizer);
  InvertedIndex index =
      InvertedIndex::BuildWithLengths(collection, set_lengths, SmallBlocks());
  const TokenId t = 0;
  ASSERT_EQ(index.ListSize(t), 40u);
  // The first len==2.0 posting sits at 10 — inside block 1, not at a seam —
  // and the run covers blocks 1..3 entirely.
  EXPECT_EQ(index.SeekFirstGE(t, 2.0f), 10u);
  EXPECT_EQ(index.SeekFirstGT(t, 2.0f), 30u);
  EXPECT_EQ(index.SeekFirstGE(t, 3.0f), 30u);
  EXPECT_EQ(index.SeekFirstGT(t, 3.0f), 40u);
  PostingRange window = index.WindowSpan(t, 2.0f, 2.0f);
  EXPECT_EQ(window.begin, 10u);
  EXPECT_EQ(window.end, 30u);
  // Ties are never split inconsistently: every posting in the window is 2.0.
  const float* lens = index.LenLens(t);
  for (size_t i = window.begin; i < window.end; ++i) {
    EXPECT_EQ(lens[i], 2.0f);
  }
  // A span bounded at the tied value stops exactly at the end of the run
  // (clipped to block granularity along the way).
  AccessCounters counters;
  ListCursor cursor(index, t, /*use_skip=*/true, &counters);
  cursor.SeekSpanStart(2.0f);
  size_t consumed = 0;
  for (;;) {
    PostingSpan span = cursor.NextSpan(index.block_postings(), 2.0f);
    if (span.empty()) break;
    for (size_t i = 0; i < span.count; ++i) EXPECT_EQ(span.lens[i], 2.0f);
    consumed += span.count;
  }
  EXPECT_EQ(consumed, 20u);
  cursor.MarkComplete();
  EXPECT_EQ(counters.elements_read + counters.elements_skipped,
            counters.elements_total);
}

TEST(PostingBlocksTest, WindowFallingBetweenTwoBlocks) {
  // Lengths 10,20,...,400: every length unique, 8 per block. A window
  // strictly between two present lengths — and between two BLOCKS when the
  // bounds straddle positions 8/9 — must come back empty or exact.
  std::vector<std::string> records(40, "zz zz");
  std::vector<float> set_lengths(40);
  for (size_t s = 0; s < 40; ++s) set_lengths[s] = 10.0f * (s + 1);
  TokenizerOptions tok_opts;
  tok_opts.kind = TokenizerKind::kWord;
  Tokenizer tokenizer(tok_opts);
  Collection collection = Collection::Build(records, tokenizer);
  InvertedIndex index =
      InvertedIndex::BuildWithLengths(collection, set_lengths, SmallBlocks());
  const TokenId t = 0;
  ASSERT_EQ(index.ListSize(t), 40u);
  // Block 0 ends at len 80, block 1 starts at len 90: a window entirely in
  // the gap between the blocks selects nothing.
  PostingRange gap = index.WindowSpan(t, 81.0f, 89.0f);
  EXPECT_TRUE(gap.empty());
  // A window spanning the seam picks exactly the two straddling postings.
  PostingRange seam = index.WindowSpan(t, 80.0f, 90.0f);
  EXPECT_EQ(seam.begin, 7u);
  EXPECT_EQ(seam.end, 9u);
  // Inverted bounds are empty, not negative-sized.
  PostingRange inverted = index.WindowSpan(t, 200.0f, 100.0f);
  EXPECT_TRUE(inverted.empty());
  EXPECT_EQ(inverted.size(), 0u);
  // A cursor seeked into the gap produces no span under the gap's hi bound.
  AccessCounters counters;
  ListCursor cursor(index, t, /*use_skip=*/true, &counters);
  cursor.SeekSpanStart(81.0f);
  EXPECT_TRUE(cursor.NextSpan(8, 89.0f).empty());
  EXPECT_TRUE(cursor.FrontierPast(89.0f));
  // The same cursor still serves the next window.
  PostingSpan span = cursor.NextSpan(8, 90.0f);
  ASSERT_EQ(span.count, 1u);
  EXPECT_EQ(span.lens[0], 90.0f);
  cursor.MarkComplete();
  EXPECT_EQ(counters.elements_read + counters.elements_skipped,
            counters.elements_total);
}

TEST(PostingBlocksTest, SpanWalkMatchesNextWalkAccounting) {
  Fixture f;
  for (TokenId t : {f.longest, static_cast<TokenId>(0)}) {
    AccessCounters by_next;
    {
      ListCursor cursor(f.index, t, /*use_skip=*/true, &by_next);
      for (cursor.Next(); !cursor.AtEnd(); cursor.Next()) {
      }
      cursor.MarkComplete();
    }
    AccessCounters by_span;
    uint64_t ids_sum_span = 0, ids_sum_next = 0;
    {
      ListCursor cursor(f.index, t, /*use_skip=*/true, &by_span);
      PostingSpan span;
      while (!(span = cursor.NextSpan(f.index.block_postings())).empty()) {
        for (size_t i = 0; i < span.count; ++i) ids_sum_span += span.ids[i];
      }
      cursor.MarkComplete();
    }
    const uint32_t* ids = f.index.LenIds(t);
    for (size_t i = 0; i < f.index.ListSize(t); ++i) ids_sum_next += ids[i];
    EXPECT_EQ(ids_sum_span, ids_sum_next) << "token " << t;
    // Identical element and page totals: spans charge what Next charges.
    EXPECT_EQ(by_span.elements_read, by_next.elements_read);
    EXPECT_EQ(by_span.elements_total, by_next.elements_total);
    EXPECT_EQ(by_span.seq_page_reads, by_next.seq_page_reads);
    EXPECT_EQ(by_span.rand_page_reads, by_next.rand_page_reads);
    EXPECT_EQ(by_span.elements_read + by_span.elements_skipped,
              by_span.elements_total);
  }
}

TEST(PostingBlocksTest, SeekSpanStartNslParity) {
  // Without skips, SeekSpanStart reads-and-discards the prefix: same element
  // and page charges as the sequential SeekLengthGE walk up to the landing.
  Fixture f;
  const float* lens = f.index.LenLens(f.longest);
  const size_t n = f.index.ListSize(f.longest);
  const float target = lens[n / 2];
  AccessCounters stepwise;
  size_t landing;
  {
    ListCursor cursor(f.index, f.longest, /*use_skip=*/false, &stepwise);
    cursor.SeekLengthGE(target);
    landing = cursor.pos();
    cursor.MarkComplete();
  }
  AccessCounters spanwise;
  {
    ListCursor cursor(f.index, f.longest, /*use_skip=*/false, &spanwise);
    cursor.SeekSpanStart(target);
    PostingSpan span = cursor.NextSpan(1);
    ASSERT_EQ(span.count, 1u);
    EXPECT_EQ(span.lens[0], lens[landing]);
    EXPECT_EQ(cursor.pos(), landing);
    cursor.MarkComplete();
  }
  EXPECT_EQ(spanwise.elements_read, stepwise.elements_read);
  EXPECT_EQ(spanwise.seq_page_reads, stepwise.seq_page_reads);
  EXPECT_EQ(spanwise.rand_page_reads, 0u);
  // Both cursors MarkComplete at the same position, so the suffix charged
  // as skipped is identical; NSL itself skips nothing.
  EXPECT_EQ(spanwise.elements_skipped, stepwise.elements_skipped);
  EXPECT_EQ(spanwise.elements_read + spanwise.elements_skipped,
            spanwise.elements_total);
}

TEST(PostingBlocksTest, ExhaustedAndDegenerateSpans) {
  Fixture f;
  AccessCounters counters;
  ListCursor cursor(f.index, f.longest, /*use_skip=*/true, &counters);
  // max_count of zero returns nothing and charges nothing.
  EXPECT_TRUE(cursor.NextSpan(0).empty());
  EXPECT_EQ(counters.elements_read, 0u);
  // A bound below the first length returns nothing.
  const float first_len = f.index.LenLens(f.longest)[0];
  EXPECT_TRUE(cursor.NextSpan(8, first_len * 0.5f).empty());
  EXPECT_EQ(counters.elements_read, 0u);
  // Seek past the end: everything is skipped, and the cursor serves no span.
  cursor.SeekSpanStart(std::numeric_limits<float>::max());
  EXPECT_TRUE(cursor.NextSpan(8).empty());
  EXPECT_TRUE(cursor.FrontierPast(ListCursor::kNoLengthBound));
  EXPECT_EQ(cursor.FrontierLen(), ListCursor::kNoLengthBound);
  cursor.MarkComplete();
  EXPECT_EQ(counters.elements_read, 0u);
  EXPECT_EQ(counters.elements_skipped, counters.elements_total);
}

TEST(PostingBlocksTest, WindowSpanAgreesAcrossBlockSizes) {
  // The same corpus indexed at different block granularities yields the
  // same windows (block size is a layout knob, not a semantic one).
  Fixture small(200, 31, SmallBlocks());
  InvertedIndexOptions big = SmallBlocks();
  big.block_postings = 64;
  Fixture large(200, 31, big);
  ASSERT_EQ(small.index.num_tokens(), large.index.num_tokens());
  for (TokenId t = 0; t < small.index.num_tokens(); t += 7) {
    const float* lens = small.index.LenLens(t);
    const size_t n = small.index.ListSize(t);
    if (n == 0) continue;
    const float lo = lens[n / 4];
    const float hi = lens[(3 * n) / 4];
    PostingRange a = small.index.WindowSpan(t, lo, hi);
    PostingRange b = large.index.WindowSpan(t, lo, hi);
    EXPECT_EQ(a.begin, b.begin) << "token " << t;
    EXPECT_EQ(a.end, b.end) << "token " << t;
  }
}

}  // namespace
}  // namespace simsel
