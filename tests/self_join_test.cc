#include <gtest/gtest.h>

#include "core/self_join.h"
#include "test_util.h"

namespace simsel {
namespace {

// Reference join: all pairs by linear scoring.
std::vector<JoinPair> ReferenceJoin(const SimilaritySelector& sel,
                                    double tau) {
  std::vector<JoinPair> pairs;
  for (SetId a = 0; a < sel.collection().size(); ++a) {
    PreparedQuery q = sel.Prepare(sel.collection().text(a));
    for (SetId b = a + 1; b < sel.collection().size(); ++b) {
      double score = sel.measure().Score(q, b);
      if (score >= tau) pairs.push_back(JoinPair{a, b, score});
    }
  }
  return pairs;
}

TEST(SelfJoinTest, MatchesReferenceJoin) {
  SimilaritySelector sel = testing_util::MakeSelector(120, 301, false);
  for (double tau : {0.6, 0.8}) {
    std::vector<JoinPair> expected = ReferenceJoin(sel, tau);
    SelfJoinResult actual = SelfJoin(sel, tau);
    ASSERT_EQ(actual.pairs.size(), expected.size()) << "tau=" << tau;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual.pairs[i].a, expected[i].a);
      EXPECT_EQ(actual.pairs[i].b, expected[i].b);
      EXPECT_DOUBLE_EQ(actual.pairs[i].score, expected[i].score);
    }
  }
}

TEST(SelfJoinTest, ParallelMatchesSequential) {
  SimilaritySelector sel = testing_util::MakeSelector(120, 301, false);
  SelfJoinResult sequential = SelfJoin(sel, 0.7);
  ThreadPool pool(4);
  SelfJoinOptions opts;
  opts.pool = &pool;
  SelfJoinResult parallel = SelfJoin(sel, 0.7, opts);
  ASSERT_EQ(parallel.pairs.size(), sequential.pairs.size());
  for (size_t i = 0; i < sequential.pairs.size(); ++i) {
    EXPECT_EQ(parallel.pairs[i].a, sequential.pairs[i].a);
    EXPECT_EQ(parallel.pairs[i].b, sequential.pairs[i].b);
  }
}

TEST(SelfJoinTest, PairsAreOrderedAndDeduplicated) {
  std::vector<std::string> records = {"duplicate entry", "duplicate entry",
                                      "duplicate entry", "unrelated"};
  SimilaritySelector sel = SimilaritySelector::Build(records);
  SelfJoinResult r = SelfJoin(sel, 0.99);
  // C(3,2) = 3 pairs among the identical records, each emitted once.
  ASSERT_EQ(r.pairs.size(), 3u);
  EXPECT_EQ(r.pairs[0].a, 0u);
  EXPECT_EQ(r.pairs[0].b, 1u);
  EXPECT_EQ(r.pairs[1].a, 0u);
  EXPECT_EQ(r.pairs[1].b, 2u);
  EXPECT_EQ(r.pairs[2].a, 1u);
  EXPECT_EQ(r.pairs[2].b, 2u);
  for (const JoinPair& p : r.pairs) EXPECT_LT(p.a, p.b);
}

TEST(SelfJoinTest, AlgorithmChoiceDoesNotChangeAnswer) {
  SimilaritySelector sel = testing_util::MakeSelector(100, 307, false);
  SelfJoinResult sf = SelfJoin(sel, 0.75);
  SelfJoinOptions opts;
  opts.algorithm = AlgorithmKind::kInra;
  SelfJoinResult inra = SelfJoin(sel, 0.75, opts);
  ASSERT_EQ(sf.pairs.size(), inra.pairs.size());
  for (size_t i = 0; i < sf.pairs.size(); ++i) {
    EXPECT_EQ(sf.pairs[i].a, inra.pairs[i].a);
    EXPECT_EQ(sf.pairs[i].b, inra.pairs[i].b);
  }
}

TEST(ClusterPairsTest, TransitiveClosure) {
  std::vector<JoinPair> pairs = {{0, 1, 1.0}, {1, 2, 1.0}, {4, 5, 1.0}};
  std::vector<std::vector<SetId>> clusters = ClusterPairs(6, pairs);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<SetId>{0, 1, 2}));
  EXPECT_EQ(clusters[1], (std::vector<SetId>{4, 5}));
}

TEST(ClusterPairsTest, NoPairsNoClusters) {
  EXPECT_TRUE(ClusterPairs(10, {}).empty());
}

TEST(ClusterPairsTest, SingletonsExcluded) {
  std::vector<JoinPair> pairs = {{2, 7, 1.0}};
  std::vector<std::vector<SetId>> clusters = ClusterPairs(9, pairs);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0], (std::vector<SetId>{2, 7}));
}

}  // namespace
}  // namespace simsel
