#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "btree/bplus_tree.h"
#include "common/rng.h"
#include "container/extendible_hash.h"
#include "container/skip_index.h"

namespace simsel {
namespace {

// --- Skip index: fanout × distribution sweep. ---

enum class Distribution { kUniform, kClustered, kConstant, kSteps };

std::vector<float> MakeLengths(Distribution dist, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  switch (dist) {
    case Distribution::kUniform:
      for (auto& x : v) x = static_cast<float>(rng.NextDouble() * 100.0);
      break;
    case Distribution::kClustered:
      // Tight cluster with a few outliers, like IDF lengths in practice.
      for (auto& x : v) {
        x = static_cast<float>(50.0 + rng.NextGaussian());
        if (rng.NextBernoulli(0.02)) {
          x = static_cast<float>(rng.NextDouble() * 100.0);
        }
      }
      break;
    case Distribution::kConstant:
      for (auto& x : v) x = 42.0f;
      break;
    case Distribution::kSteps:
      // Long runs of equal values (duplicate set lengths).
      for (size_t i = 0; i < n; ++i) {
        v[i] = static_cast<float>((i / 97) * 3);
      }
      break;
  }
  std::sort(v.begin(), v.end());
  return v;
}

class SkipIndexSweep
    : public ::testing::TestWithParam<std::tuple<size_t, Distribution>> {};

TEST_P(SkipIndexSweep, AlwaysMatchesLowerBound) {
  const auto& [fanout, dist] = GetParam();
  std::vector<float> v = MakeLengths(dist, 4000, 7 + fanout);
  SkipIndex skip(v.data(), v.size(), fanout);
  Rng rng(99);
  for (int probe = 0; probe < 300; ++probe) {
    float target = static_cast<float>(rng.NextDouble() * 110.0 - 5.0);
    size_t expected = static_cast<size_t>(
        std::lower_bound(v.begin(), v.end(), target) - v.begin());
    ASSERT_EQ(skip.SeekFirstGE(target), expected)
        << "fanout=" << fanout << " target=" << target;
  }
  // Probe exact stored values too (duplicate-heavy distributions).
  for (size_t i = 0; i < v.size(); i += 131) {
    size_t expected = static_cast<size_t>(
        std::lower_bound(v.begin(), v.end(), v[i]) - v.begin());
    ASSERT_EQ(skip.SeekFirstGE(v[i]), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FanoutsAndDistributions, SkipIndexSweep,
    ::testing::Combine(::testing::Values(2, 3, 8, 64, 1024),
                       ::testing::Values(Distribution::kUniform,
                                         Distribution::kClustered,
                                         Distribution::kConstant,
                                         Distribution::kSteps)),
    ([](const auto& info) {
      const char* names[] = {"Uniform", "Clustered", "Constant", "Steps"};
      return "f" + std::to_string(std::get<0>(info.param)) +
             names[static_cast<int>(std::get<1>(info.param))];
    }));

// --- Extendible hash: bucket page size sweep. ---

class ExtendibleHashSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ExtendibleHashSweep, FullLifecycle) {
  const size_t page = GetParam();
  ExtendibleHash hash(page);
  std::map<uint64_t, float> reference;
  Rng rng(3 + page);
  for (int i = 0; i < 5000; ++i) {
    uint64_t key = rng.NextBounded(4000);
    float value = static_cast<float>(i);
    if (rng.NextBernoulli(0.15) && !reference.empty()) {
      // Random erase of an existing key.
      auto it = reference.begin();
      std::advance(it, rng.NextBounded(reference.size()));
      EXPECT_TRUE(hash.Erase(it->first));
      reference.erase(it);
    } else {
      hash.Insert(key, value);
      reference[key] = value;
    }
  }
  EXPECT_EQ(hash.size(), reference.size());
  for (const auto& [key, value] : reference) {
    float v = 0;
    ASSERT_TRUE(hash.Lookup(key, &v)) << "page=" << page << " key=" << key;
    EXPECT_FLOAT_EQ(v, value);
  }
}

INSTANTIATE_TEST_SUITE_P(PageSizes, ExtendibleHashSweep,
                         ::testing::Values(64, 128, 512, 4096),
                         [](const auto& info) {
                           return "page" + std::to_string(info.param);
                         });

// --- B+-tree: page size × insertion pattern sweep. ---

enum class InsertPattern { kAscending, kDescending, kRandom, kDuplicates };

class BPlusTreeSweep
    : public ::testing::TestWithParam<std::tuple<size_t, InsertPattern>> {};

TEST_P(BPlusTreeSweep, ValidAndComplete) {
  const auto& [page, pattern] = GetParam();
  BPlusTree<int, int>::Options opts;
  opts.page_bytes = page;
  BPlusTree<int, int> tree(opts);
  std::vector<int> keys;
  const int n = 3000;
  Rng rng(11 + page);
  for (int i = 0; i < n; ++i) {
    int key = 0;
    switch (pattern) {
      case InsertPattern::kAscending:
        key = i;
        break;
      case InsertPattern::kDescending:
        key = n - i;
        break;
      case InsertPattern::kRandom:
        key = static_cast<int>(rng.NextBounded(10 * n));
        break;
      case InsertPattern::kDuplicates:
        key = static_cast<int>(rng.NextBounded(7));
        break;
    }
    tree.Insert(key, i);
    keys.push_back(key);
  }
  ASSERT_TRUE(tree.Validate())
      << "page=" << page << " pattern=" << static_cast<int>(pattern);
  EXPECT_EQ(tree.size(), keys.size());
  std::sort(keys.begin(), keys.end());
  size_t i = 0;
  for (auto s = tree.Begin(); s.Valid(); s.Next(), ++i) {
    ASSERT_EQ(s.key(), keys[i]);
  }
  EXPECT_EQ(i, keys.size());
}

INSTANTIATE_TEST_SUITE_P(
    PagesAndPatterns, BPlusTreeSweep,
    ::testing::Combine(::testing::Values(256, 1024, 8192),
                       ::testing::Values(InsertPattern::kAscending,
                                         InsertPattern::kDescending,
                                         InsertPattern::kRandom,
                                         InsertPattern::kDuplicates)),
    ([](const auto& info) {
      const char* names[] = {"Asc", "Desc", "Random", "Dups"};
      return "page" + std::to_string(std::get<0>(info.param)) +
             names[static_cast<int>(std::get<1>(info.param))];
    }));

}  // namespace
}  // namespace simsel
