#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.h"
#include "container/extendible_hash.h"

namespace simsel {
namespace {

TEST(ExtendibleHashTest, InsertAndLookup) {
  ExtendibleHash hash(1024);
  hash.Insert(42, 1.5f);
  float v = 0;
  EXPECT_TRUE(hash.Lookup(42, &v));
  EXPECT_FLOAT_EQ(v, 1.5f);
  EXPECT_FALSE(hash.Lookup(43));
  EXPECT_EQ(hash.size(), 1u);
}

TEST(ExtendibleHashTest, OverwriteDoesNotGrow) {
  ExtendibleHash hash(1024);
  hash.Insert(7, 1.0f);
  hash.Insert(7, 2.0f);
  EXPECT_EQ(hash.size(), 1u);
  float v = 0;
  EXPECT_TRUE(hash.Lookup(7, &v));
  EXPECT_FLOAT_EQ(v, 2.0f);
}

TEST(ExtendibleHashTest, Erase) {
  ExtendibleHash hash(1024);
  hash.Insert(1, 1.0f);
  hash.Insert(2, 2.0f);
  EXPECT_TRUE(hash.Erase(1));
  EXPECT_FALSE(hash.Erase(1));
  EXPECT_FALSE(hash.Lookup(1));
  EXPECT_TRUE(hash.Lookup(2));
  EXPECT_EQ(hash.size(), 1u);
}

TEST(ExtendibleHashTest, ManyKeysAllRetrievable) {
  ExtendibleHash hash(256);  // small pages force many splits
  std::unordered_map<uint64_t, float> reference;
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    uint64_t key = rng.NextU64() % 30000;
    float value = static_cast<float>(rng.NextDouble());
    hash.Insert(key, value);
    reference[key] = value;
  }
  EXPECT_EQ(hash.size(), reference.size());
  for (const auto& [key, value] : reference) {
    float v = 0;
    ASSERT_TRUE(hash.Lookup(key, &v)) << key;
    EXPECT_FLOAT_EQ(v, value);
  }
  // Absent keys still miss.
  for (uint64_t key = 30001; key < 30100; ++key) {
    EXPECT_FALSE(hash.Lookup(key));
  }
}

TEST(ExtendibleHashTest, DirectoryGrowsUnderLoad) {
  ExtendibleHash hash(256);
  for (uint64_t i = 0; i < 5000; ++i) hash.Insert(i, 0.0f);
  EXPECT_GT(hash.global_depth(), 3);
  EXPECT_GT(hash.num_buckets(), 16u);
  EXPECT_EQ(hash.directory_entries(), 1u << hash.global_depth());
  EXPECT_GE(hash.directory_entries(), hash.num_buckets());
}

TEST(ExtendibleHashTest, SequentialKeysNoClustering) {
  ExtendibleHash hash(512);
  for (uint64_t i = 0; i < 10000; ++i) {
    hash.Insert(i, static_cast<float>(i));
  }
  for (uint64_t i = 0; i < 10000; i += 97) {
    float v = -1;
    ASSERT_TRUE(hash.Lookup(i, &v));
    EXPECT_FLOAT_EQ(v, static_cast<float>(i));
  }
}

TEST(ExtendibleHashTest, LookupChargesExactlyOnePage) {
  ExtendibleHash hash(1024);
  for (uint64_t i = 0; i < 1000; ++i) hash.Insert(i, 0.0f);
  uint64_t pages = 0;
  hash.Lookup(5, nullptr, &pages);
  EXPECT_EQ(pages, 1u);
  hash.Lookup(999999, nullptr, &pages);  // miss also fetches the page
  EXPECT_EQ(pages, 2u);
}

TEST(ExtendibleHashTest, SizeBytesTracksBucketsAndDirectory) {
  ExtendibleHash hash(1024);
  size_t initial = hash.SizeBytes();
  for (uint64_t i = 0; i < 2000; ++i) hash.Insert(i, 0.0f);
  EXPECT_GT(hash.SizeBytes(), initial);
  EXPECT_EQ(hash.SizeBytes(), hash.num_buckets() * 1024 +
                                  hash.directory_entries() * sizeof(uint64_t));
}

TEST(ExtendibleHashTest, BucketCapacityFromPageSize) {
  ExtendibleHash small(128);
  ExtendibleHash large(4096);
  EXPECT_LT(small.bucket_capacity(), large.bucket_capacity());
  EXPECT_EQ(small.bucket_capacity(), (128u - 8u) / 12u);
}

TEST(ExtendibleHashTest, EraseThenReinsert) {
  ExtendibleHash hash(256);
  for (uint64_t i = 0; i < 1000; ++i) hash.Insert(i, 1.0f);
  for (uint64_t i = 0; i < 1000; i += 2) EXPECT_TRUE(hash.Erase(i));
  EXPECT_EQ(hash.size(), 500u);
  for (uint64_t i = 0; i < 1000; i += 2) hash.Insert(i, 2.0f);
  EXPECT_EQ(hash.size(), 1000u);
  float v = 0;
  EXPECT_TRUE(hash.Lookup(0, &v));
  EXPECT_FLOAT_EQ(v, 2.0f);
  EXPECT_TRUE(hash.Lookup(1, &v));
  EXPECT_FLOAT_EQ(v, 1.0f);
}

}  // namespace
}  // namespace simsel
