#include <gtest/gtest.h>

#include "index/list_cursor.h"
#include "test_util.h"

namespace simsel {
namespace {

// A fixture with one reasonably long list to exercise seeks.
struct Fixture {
  Fixture()
      : tokenizer(TokenizerOptions{.q = 3}),
        collection(Collection::Build(
            testing_util::MakeWordRecords(500, /*seed=*/9), tokenizer)),
        measure(collection) {
    InvertedIndexOptions opts;
    opts.page_bytes = 128;  // 16 postings per page
    opts.skip_fanout = 8;
    index = std::make_unique<InvertedIndex>(
        InvertedIndex::Build(collection, measure, opts));
    // Pick the longest list.
    for (TokenId t = 0; t < index->num_tokens(); ++t) {
      if (index->ListSize(t) > index->ListSize(token)) token = t;
    }
    EXPECT_GT(index->ListSize(token), 32u);
  }

  Tokenizer tokenizer;
  Collection collection;
  IdfMeasure measure;
  std::unique_ptr<InvertedIndex> index;
  TokenId token = 0;
};

TEST(ListCursorTest, ConstructorChargesTotal) {
  Fixture f;
  AccessCounters counters;
  ListCursor cursor(*f.index, f.token, true, &counters);
  EXPECT_EQ(counters.elements_total, f.index->ListSize(f.token));
  EXPECT_EQ(counters.elements_read, 0u);
  EXPECT_FALSE(cursor.positioned());
}

TEST(ListCursorTest, NextWalksWholeList) {
  Fixture f;
  AccessCounters counters;
  ListCursor cursor(*f.index, f.token, true, &counters);
  size_t n = f.index->ListSize(f.token);
  size_t steps = 0;
  for (cursor.Next(); !cursor.AtEnd(); cursor.Next()) ++steps;
  EXPECT_EQ(steps, n);
  EXPECT_EQ(counters.elements_read, n);
  // 16 postings per page.
  EXPECT_EQ(counters.seq_page_reads, (n + 15) / 16);
  EXPECT_EQ(counters.elements_skipped, 0u);
}

TEST(ListCursorTest, SeekWithSkipIndexSkipsElements) {
  Fixture f;
  AccessCounters counters;
  ListCursor cursor(*f.index, f.token, /*use_skip=*/true, &counters);
  const float* lens = f.index->LenLens(f.token);
  size_t n = f.index->ListSize(f.token);
  float target = lens[n / 2];
  cursor.SeekLengthGE(target);
  ASSERT_TRUE(cursor.positioned());
  EXPECT_GE(cursor.len(), target);
  // Everything before the landing position was skipped, not read.
  EXPECT_EQ(counters.elements_read, 1u);
  EXPECT_EQ(counters.elements_skipped, cursor.pos());
  EXPECT_GT(counters.rand_page_reads, 0u);
  // The landing element is the FIRST with len >= target.
  if (cursor.pos() > 0) {
    EXPECT_LT(lens[cursor.pos() - 1], target);
  }
}

TEST(ListCursorTest, SeekWithoutSkipReadsPrefix) {
  Fixture f;
  AccessCounters counters;
  ListCursor cursor(*f.index, f.token, /*use_skip=*/false, &counters);
  const float* lens = f.index->LenLens(f.token);
  size_t n = f.index->ListSize(f.token);
  float target = lens[n / 2];
  cursor.SeekLengthGE(target);
  ASSERT_TRUE(cursor.positioned());
  EXPECT_GE(cursor.len(), target);
  // NSL mode: the prefix is read and discarded.
  EXPECT_EQ(counters.elements_read, cursor.pos() + 1);
  EXPECT_EQ(counters.elements_skipped, 0u);
  EXPECT_EQ(counters.rand_page_reads, 0u);
}

TEST(ListCursorTest, SeekIsForwardOnlyNoop) {
  Fixture f;
  AccessCounters counters;
  ListCursor cursor(*f.index, f.token, true, &counters);
  const float* lens = f.index->LenLens(f.token);
  size_t n = f.index->ListSize(f.token);
  cursor.SeekLengthGE(lens[n / 2]);
  size_t pos = cursor.pos();
  cursor.SeekLengthGE(0.0f);  // already satisfied: no movement
  EXPECT_EQ(cursor.pos(), pos);
}

TEST(ListCursorTest, SeekPastEndExhausts) {
  Fixture f;
  AccessCounters counters;
  ListCursor cursor(*f.index, f.token, true, &counters);
  cursor.SeekLengthGE(1e30f);
  EXPECT_TRUE(cursor.AtEnd());
  EXPECT_EQ(counters.elements_skipped, f.index->ListSize(f.token));
  EXPECT_EQ(counters.elements_read, 0u);
}

TEST(ListCursorTest, MarkCompleteChargesRemainderAsSkipped) {
  Fixture f;
  AccessCounters counters;
  ListCursor cursor(*f.index, f.token, true, &counters);
  cursor.Next();
  cursor.Next();
  cursor.MarkComplete();
  EXPECT_TRUE(cursor.AtEnd());
  EXPECT_EQ(counters.elements_read + counters.elements_skipped,
            counters.elements_total);
}

TEST(ListCursorTest, MarkCompleteOnFreshCursor) {
  Fixture f;
  AccessCounters counters;
  ListCursor cursor(*f.index, f.token, true, &counters);
  cursor.MarkComplete();
  EXPECT_EQ(counters.elements_skipped, counters.elements_total);
}

TEST(ListCursorTest, ReadPlusSkippedAlwaysCoversSeeks) {
  Fixture f;
  AccessCounters counters;
  ListCursor cursor(*f.index, f.token, true, &counters);
  const float* lens = f.index->LenLens(f.token);
  size_t n = f.index->ListSize(f.token);
  cursor.SeekLengthGE(lens[n / 4]);
  cursor.Next();
  cursor.SeekLengthGE(lens[(3 * n) / 4]);
  cursor.MarkComplete();
  EXPECT_EQ(counters.elements_read + counters.elements_skipped, n);
}

TEST(ListCursorTest, EmptyListIsAtEnd) {
  // Build a tiny collection with a token that appears once, then query a
  // cursor over an id with an empty list is impossible; instead check the
  // smallest list still behaves.
  Fixture f;
  TokenId smallest = 0;
  for (TokenId t = 0; t < f.index->num_tokens(); ++t) {
    if (f.index->ListSize(t) < f.index->ListSize(smallest)) smallest = t;
  }
  AccessCounters counters;
  ListCursor cursor(*f.index, smallest, true, &counters);
  size_t n = f.index->ListSize(smallest);
  size_t steps = 0;
  for (cursor.Next(); !cursor.AtEnd(); cursor.Next()) ++steps;
  EXPECT_EQ(steps, n);
}

}  // namespace
}  // namespace simsel
