#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "index/list_cursor.h"
#include "storage/fault_injector.h"
#include "storage/paged_file.h"
#include "storage/posting_store.h"
#include "test_util.h"

// Scripted transient storage faults: an armed FaultInjector makes PagedFile
// reads fail with Unavailable. The failure must travel fail-soft through
// the cursor (reads as exhausted, suffix charged as skipped), surface in
// QueryResult::status with matches cleared — never a crash or a silently
// wrong answer — and BatchSelect must retry it with bounded backoff.

namespace simsel {
namespace {

using testing_util::ExpectSameMatches;
using testing_util::MakeSelector;

const SimilaritySelector& Selector() {
  static const SimilaritySelector* selector = new SimilaritySelector(
      MakeSelector(500, /*seed=*/613, /*with_sql=*/false));
  return *selector;
}

// The fault tests arm/disarm a store-level injector, so each builds its own
// store rather than sharing a global one.
PostingStore MakeStore() { return PostingStore::Build(Selector().index()); }

TEST(FaultInjectorTest, HandsOutExactlyTheArmedFailures) {
  PagedFile file(64);
  std::vector<uint8_t> payload(256, 0xAB);
  file.Append(payload.data(), payload.size());
  FaultInjector injector;
  file.set_fault_injector(&injector);

  uint8_t buf[16];
  ASSERT_TRUE(file.ReadAt(0, sizeof(buf), buf).ok());

  injector.FailNextReads(2);
  Status st = file.ReadAt(0, sizeof(buf), buf);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsTransient());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(file.ReadAt(16, sizeof(buf), buf).ok());
  // Armed count exhausted: reads heal.
  EXPECT_TRUE(file.ReadAt(32, sizeof(buf), buf).ok());
  EXPECT_EQ(injector.injected(), 2u);
  EXPECT_EQ(injector.remaining(), 0u);

  // A failed read never touches accounting or the destination buffer.
  file.ResetCounters();
  injector.FailNextReads(1);
  uint8_t canary[16];
  std::memset(canary, 0x5C, sizeof(canary));
  EXPECT_FALSE(file.ReadAt(0, sizeof(canary), canary, /*random=*/true).ok());
  EXPECT_EQ(file.random_page_reads(), 0u);
  for (uint8_t b : canary) EXPECT_EQ(b, 0x5C);
}

TEST(FaultInjectorTest, ReadBlockSurfacesStatusInsteadOfCrashing) {
  PostingStore store = MakeStore();
  FaultInjector injector;
  store.set_fault_injector(&injector);
  const InvertedIndex& index = Selector().index();
  TokenId token = 0;
  for (TokenId t = 0; t < index.num_tokens(); ++t) {
    if (index.ListSize(t) > index.ListSize(token)) token = t;
  }
  std::vector<uint32_t> ids(index.ListSize(token));
  std::vector<float> lens(ids.size());

  injector.FailNextReads(1);
  Status status;
  size_t got = store.ReadBlock(token, 0, ids.size(), ids.data(), lens.data(),
                               false, nullptr, &status);
  EXPECT_EQ(got, 0u);
  EXPECT_TRUE(status.IsTransient());
  // Disarmed: the same call succeeds and the status out-param resets to OK.
  got = store.ReadBlock(token, 0, ids.size(), ids.data(), lens.data(), false,
                        nullptr, &status);
  EXPECT_EQ(got, ids.size());
  EXPECT_TRUE(status.ok());
}

TEST(FaultInjectorTest, ListCursorFailsSoft) {
  PostingStore store = MakeStore();
  FaultInjector injector;
  store.set_fault_injector(&injector);
  const InvertedIndex& index = Selector().index();
  TokenId token = 0;
  for (TokenId t = 0; t < index.num_tokens(); ++t) {
    if (index.ListSize(t) > index.ListSize(token)) token = t;
  }
  const size_t n = index.ListSize(token);
  ASSERT_GT(n, 16u);

  AccessCounters counters;
  ListCursor cursor(index, token, /*use_skip=*/true, &counters, nullptr,
                    &store);
  // Read a few postings healthy, then pull the plug mid-list.
  for (int i = 0; i < 3; ++i) cursor.Next();
  ASSERT_TRUE(cursor.ok());
  size_t read_before = counters.elements_read;
  injector.FailNextReads(1'000'000);
  while (!cursor.AtEnd()) cursor.Next();

  EXPECT_FALSE(cursor.ok());
  EXPECT_TRUE(cursor.status().IsTransient());
  EXPECT_TRUE(cursor.AtEnd());
  EXPECT_EQ(cursor.FrontierLen(), ListCursor::kNoLengthBound);
  // Accounting invariant: everything not read was charged as skipped —
  // read + skipped covers the whole list despite the failure.
  EXPECT_EQ(counters.elements_read + counters.elements_skipped, n);
  EXPECT_GE(counters.elements_read, read_before);
  // Further calls on the failed cursor stay safe no-ops.
  cursor.Next();
  cursor.SeekLengthGE(0.0f);
  EXPECT_TRUE(cursor.NextSpan(64).empty());
  cursor.MarkComplete();
  EXPECT_EQ(counters.elements_read + counters.elements_skipped, n);
}

TEST(FaultInjectionQueryTest, FailureSurfacesAsStatusWithMatchesCleared) {
  const SimilaritySelector& sel = Selector();
  PostingStore store = MakeStore();
  FaultInjector injector;
  store.set_fault_injector(&injector);
  const std::string query = sel.collection().text(11);
  SelectOptions disk;
  disk.posting_store = &store;

  for (AlgorithmKind kind :
       {AlgorithmKind::kSf, AlgorithmKind::kInra, AlgorithmKind::kHybrid,
        AlgorithmKind::kIta, AlgorithmKind::kNra, AlgorithmKind::kTa,
        AlgorithmKind::kPrefixFilter}) {
    std::string context = AlgorithmKindName(kind);
    QueryResult healthy = sel.Select(query, 0.6, kind, disk);
    ASSERT_TRUE(healthy.complete()) << context;
    ASSERT_FALSE(healthy.matches.empty()) << context;

    injector.FailNextReads(1'000'000);
    QueryResult failed = sel.Select(query, 0.6, kind, disk);
    injector.Reset();
    EXPECT_FALSE(failed.status.ok()) << context;
    EXPECT_TRUE(failed.status.IsTransient()) << context;
    EXPECT_TRUE(failed.matches.empty()) << context;
    EXPECT_EQ(failed.counters.results, 0u) << context;
    EXPECT_FALSE(failed.complete()) << context;

    // The store healed (injector reset): the same query is exact again.
    QueryResult recovered = sel.Select(query, 0.6, kind, disk);
    ExpectSameMatches(healthy.matches, recovered.matches, context);
  }
}

TEST(FaultInjectionQueryTest, BatchSelectRetriesTransientFaults) {
  const SimilaritySelector& sel = Selector();
  PostingStore store = MakeStore();
  FaultInjector injector;
  store.set_fault_injector(&injector);
  std::vector<std::string> queries;
  for (SetId s = 0; s < 8; ++s) queries.push_back(sel.collection().text(s));
  SelectOptions disk;
  disk.posting_store = &store;
  ThreadPool pool(1);  // serial pool: the single armed fault lands on one
                       // known attempt and the retry must absorb it

  std::vector<QueryResult> expected =
      BatchSelect(sel, queries, 0.6, AlgorithmKind::kSf, disk, &pool);
  for (const QueryResult& r : expected) ASSERT_TRUE(r.complete());

  // One transient read failure: the afflicted query's first attempt fails,
  // its retry succeeds, and the batch comes out exact.
  injector.FailNextReads(1);
  std::vector<QueryResult> batch =
      BatchSelect(sel, queries, 0.6, AlgorithmKind::kSf, disk, &pool);
  EXPECT_EQ(injector.injected(), 1u);
  ASSERT_EQ(batch.size(), expected.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(batch[i].status.ok()) << "query " << i;
    ExpectSameMatches(expected[i].matches, batch[i].matches,
                      "retried query " + std::to_string(i));
  }
}

TEST(FaultInjectionQueryTest, BatchSelectSurfacesPersistentOutage) {
  const SimilaritySelector& sel = Selector();
  PostingStore store = MakeStore();
  FaultInjector injector;
  store.set_fault_injector(&injector);
  std::vector<std::string> queries = {sel.collection().text(2)};
  SelectOptions disk;
  disk.posting_store = &store;
  ThreadPool pool(1);

  // Every read fails: all retry attempts burn out and the failure surfaces
  // as a Status on the result — the batch itself never crashes.
  injector.FailNextReads(UINT64_MAX / 2);
  std::vector<QueryResult> batch =
      BatchSelect(sel, queries, 0.6, AlgorithmKind::kSf, disk, &pool);
  const uint64_t faults_seen = injector.injected();
  injector.Reset();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_FALSE(batch[0].status.ok());
  EXPECT_TRUE(batch[0].status.IsTransient());
  EXPECT_TRUE(batch[0].matches.empty());
  // Three attempts ran (bounded retry), each observing at least one fault.
  EXPECT_GE(faults_seen, 3u);
}

TEST(FaultInjectionQueryTest, MemoryModeIsImmuneToTheInjector) {
  // The injector sits under the posting store; memory-mode queries never
  // touch it and stay exact while it is armed.
  const SimilaritySelector& sel = Selector();
  PostingStore store = MakeStore();
  FaultInjector injector;
  store.set_fault_injector(&injector);
  injector.FailNextReads(1'000'000);
  const std::string query = sel.collection().text(7);
  QueryResult r = sel.Select(query, 0.7, AlgorithmKind::kSf, {});
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(injector.injected(), 0u);
}

}  // namespace
}  // namespace simsel
