// Flight recorder and trace-composition tests: AdoptChild stitching,
// structure-string determinism, the per-thread ring, tail-sampled
// slow-query records, and the Chrome trace-event export. The recorder under
// test is the process-wide instance, so every fixture starts from
// ResetForTest().
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace simsel {
namespace {

using obs::FlightEvent;
using obs::FlightRecorder;
using obs::QueryCompletion;
using obs::QueryTrace;
using obs::TraceScope;
using obs::TraceSpan;

#ifndef SIMSEL_DISABLE_TRACING

// Records a small but non-trivial tree: root -> (tokenize, work -> inner).
void RecordDemoTrace(QueryTrace* trace) {
  TraceScope root(trace, "query");
  {
    TraceScope tok(trace, "tokenize");
    tok.SetItems(3);
  }
  TraceScope work(trace, "work");
  TraceScope inner(trace, "inner");
  inner.SetItems(7);
}

// ------------------------------------------------------------- AdoptChild

TEST(AdoptChildTest, StitchesChildUnderOpenSpan) {
  QueryTrace child;
  RecordDemoTrace(&child);

  QueryTrace parent;
  {
    TraceScope root(&parent, "serve");
    TraceScope scatter(&parent, "scatter");
    parent.AdoptChild("shard", 0, child, 42);
    parent.AdoptChild("shard", 1, child, 7);
  }
  EXPECT_EQ(parent.StructureString(),
            "0:serve\n"
            "1:scatter\n"
            "2:shard[0]\n"
            "3:query\n"
            "4:tokenize\n"
            "4:work\n"
            "5:inner\n"
            "2:shard[1]\n"
            "3:query\n"
            "4:tokenize\n"
            "4:work\n"
            "5:inner\n");
  // The wrapper carries the gather-side payload and covers its child spans.
  const std::vector<TraceSpan>& spans = parent.spans();
  const TraceSpan& wrapper = spans[2];
  EXPECT_STREQ(wrapper.name, "shard");
  EXPECT_EQ(wrapper.tag, 0u);
  EXPECT_EQ(wrapper.items, 42u);
  const TraceSpan& adopted_root = spans[3];
  EXPECT_GE(adopted_root.start_ns, wrapper.start_ns);
  EXPECT_LE(adopted_root.start_ns + adopted_root.dur_ns,
            wrapper.start_ns + wrapper.dur_ns);
  // Tagged wrappers render as name[tag] in the human-readable dump too.
  EXPECT_NE(parent.ToString().find("shard[1]"), std::string::npos);
}

TEST(AdoptChildTest, EmptyChildContributesZeroDurationWrapper) {
  QueryTrace child;  // never recorded into
  QueryTrace parent;
  {
    TraceScope root(&parent, "serve");
    parent.AdoptChild("shard", 3, child, 0);
  }
  ASSERT_EQ(parent.spans().size(), 2u);
  EXPECT_EQ(parent.spans()[1].dur_ns, 0u);
  EXPECT_EQ(parent.StructureString(), "0:serve\n1:shard[3]\n");
}

TEST(AdoptChildTest, AdoptIntoEmptyParentUsesChildEpoch) {
  QueryTrace child;
  RecordDemoTrace(&child);
  QueryTrace parent;
  parent.AdoptChild("batch_query", 0, child, 1);
  ASSERT_FALSE(parent.empty());
  // With no re-basing delta the child keeps its own offsets.
  EXPECT_EQ(parent.spans()[0].start_ns, child.spans()[0].start_ns);
  EXPECT_EQ(parent.spans()[1].start_ns, child.spans()[0].start_ns);
}

TEST(AdoptChildTest, StructureStringIsStableAcrossRuns) {
  auto build = [] {
    QueryTrace child_a, child_b, parent;
    RecordDemoTrace(&child_a);
    RecordDemoTrace(&child_b);
    TraceScope root(&parent, "serve");
    parent.AdoptChild("shard", 0, child_a, 1);
    parent.AdoptChild("shard", 1, child_b, 2);
    return parent.StructureString();
  };
  EXPECT_EQ(build(), build());  // durations differ, shape must not
}

// ------------------------------------------------------------------- ring

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { FlightRecorder::Global().ResetForTest(); }
  void TearDown() override { FlightRecorder::Global().ResetForTest(); }
};

QueryCompletion HealthyCompletion(const QueryTrace* trace,
                                  uint64_t latency_usec = 10) {
  QueryCompletion info;
  info.algo = "SF";
  info.latency_usec = latency_usec;
  info.termination = "completed";
  info.trace = trace;
  return info;
}

TEST_F(FlightRecorderTest, HealthyQueriesLandInTheRing) {
  QueryTrace trace;
  RecordDemoTrace(&trace);
  FlightRecorder::Global().OnQueryComplete(HealthyCompletion(&trace));
  std::vector<FlightEvent> events = FlightRecorder::Global().DumpEvents();
  ASSERT_EQ(events.size(), trace.spans().size());
  // Ring events preserve names and payloads; all from this thread.
  std::vector<std::string> names;
  for (const FlightEvent& ev : events) names.push_back(ev.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "query"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "inner"), names.end());
  EXPECT_EQ(events[0].tid, events[1].tid);
  // Nothing was tail-sampled.
  EXPECT_TRUE(FlightRecorder::Global().SlowQueryLog().empty());
  EXPECT_EQ(FlightRecorder::Global().slow_queries_recorded(), 0u);
}

TEST_F(FlightRecorderTest, RingOverwritesOldestBeyondCapacity) {
  QueryTrace trace;
  RecordDemoTrace(&trace);
  const size_t per_query = trace.spans().size();
  const size_t queries = FlightRecorder::kRingCapacity / per_query + 10;
  for (size_t i = 0; i < queries; ++i) {
    QueryTrace t;
    RecordDemoTrace(&t);
    FlightRecorder::Global().OnQueryComplete(HealthyCompletion(&t));
  }
  std::vector<FlightEvent> events = FlightRecorder::Global().DumpEvents();
  EXPECT_LE(events.size(), FlightRecorder::kRingCapacity);
  EXPECT_GT(events.size(), FlightRecorder::kRingCapacity / 2);
}

TEST_F(FlightRecorderTest, ConcurrentWritersStayIsolated) {
  constexpr int kThreads = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        QueryTrace trace;
        RecordDemoTrace(&trace);
        FlightRecorder::Global().OnQueryComplete(HealthyCompletion(&trace));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  std::vector<FlightEvent> events = FlightRecorder::Global().DumpEvents();
  EXPECT_FALSE(events.empty());
  // Events are sorted by start time regardless of source thread.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_ns, events[i].start_ns);
  }
}

TEST_F(FlightRecorderTest, DisabledRecorderIsSilent) {
  FlightRecorder::Global().set_enabled(false);
  EXPECT_EQ(FlightRecorder::Global().ThreadTrace(), nullptr);
  QueryTrace trace;
  RecordDemoTrace(&trace);
  QueryCompletion tripped = HealthyCompletion(&trace);
  tripped.tripped = true;
  tripped.termination = "deadline";
  FlightRecorder::Global().OnQueryComplete(tripped);
  EXPECT_TRUE(FlightRecorder::Global().SlowQueryLog().empty());
  EXPECT_TRUE(FlightRecorder::Global().DumpEvents().empty());
}

TEST_F(FlightRecorderTest, ThreadTraceIsClearedAndReused) {
  QueryTrace* a = FlightRecorder::Global().ThreadTrace();
  ASSERT_NE(a, nullptr);
  RecordDemoTrace(a);
  EXPECT_FALSE(a->empty());
  QueryTrace* b = FlightRecorder::Global().ThreadTrace();
  EXPECT_EQ(a, b);        // same thread, same reusable object
  EXPECT_TRUE(b->empty());  // handed back clean
}

// --------------------------------------------------------- slow-query log

TEST_F(FlightRecorderTest, SlowQueryIsKeptWithSpansAndCounters) {
  FlightRecorder::Global().set_slow_query_usec(100);
  std::vector<std::string> sunk;
  FlightRecorder::Global().SetSlowQuerySink(
      [&sunk](const std::string& record) { sunk.push_back(record); });

  QueryTrace trace;
  RecordDemoTrace(&trace);
  AccessCounters counters;
  counters.elements_read = 55;
  QueryCompletion info = HealthyCompletion(&trace, /*latency_usec=*/250);
  info.counters = &counters;
  FlightRecorder::Global().OnQueryComplete(info);
  // Below the threshold: not kept.
  FlightRecorder::Global().OnQueryComplete(
      HealthyCompletion(&trace, /*latency_usec=*/50));

  std::vector<std::string> log = FlightRecorder::Global().SlowQueryLog();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(sunk, log);
  const std::string& rec = log[0];
  EXPECT_NE(rec.find("\"algo\":\"SF\""), std::string::npos);
  EXPECT_NE(rec.find("\"latency_usec\":250"), std::string::npos);
  EXPECT_NE(rec.find("\"termination\":\"completed\""), std::string::npos);
  EXPECT_NE(rec.find("\"elements_read\":55"), std::string::npos);
  EXPECT_NE(rec.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_EQ(FlightRecorder::Global().slow_queries_recorded(), 1u);
}

TEST_F(FlightRecorderTest, TrippedAndFailedQueriesAreAlwaysKept) {
  ASSERT_EQ(FlightRecorder::Global().slow_query_usec(), 0u);  // no threshold
  QueryTrace trace;
  RecordDemoTrace(&trace);

  QueryCompletion tripped = HealthyCompletion(&trace, 1);
  tripped.tripped = true;
  tripped.termination = "deadline";
  FlightRecorder::Global().OnQueryComplete(tripped);

  QueryCompletion failed = HealthyCompletion(&trace, 1);
  failed.failed = true;
  failed.status_message = "UNAVAILABLE: injected";
  FlightRecorder::Global().OnQueryComplete(failed);

  std::vector<std::string> log = FlightRecorder::Global().SlowQueryLog();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_NE(log[0].find("\"termination\":\"deadline\""), std::string::npos);
  EXPECT_NE(log[1].find("\"failed\":true"), std::string::npos);
  EXPECT_NE(log[1].find("injected"), std::string::npos);
}

TEST_F(FlightRecorderTest, SlowLogIsBounded) {
  QueryTrace trace;
  RecordDemoTrace(&trace);
  for (size_t i = 0; i < FlightRecorder::kMaxSlowRecords + 20; ++i) {
    QueryCompletion tripped = HealthyCompletion(&trace, 1);
    tripped.tripped = true;
    tripped.termination = "budget";
    FlightRecorder::Global().OnQueryComplete(tripped);
  }
  EXPECT_EQ(FlightRecorder::Global().SlowQueryLog().size(),
            FlightRecorder::kMaxSlowRecords);
  EXPECT_EQ(FlightRecorder::Global().slow_queries_recorded(),
            FlightRecorder::kMaxSlowRecords + 20);
}

// ----------------------------------------------------------- Chrome export

// Structural validation without a JSON parser: balanced delimiters, the
// required top-level keys, one complete event per span.
void ExpectChromeTraceShape(const std::string& json, size_t expected_events) {
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  size_t events = 0;
  for (size_t pos = 0;
       (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos; ++pos) {
    ++events;
  }
  EXPECT_EQ(events, expected_events);
  if (expected_events > 0) {
    EXPECT_NE(json.find("\"cat\":\"simsel\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  }
}

TEST(ChromeTraceExportTest, QueryTraceRoundTripsStructurally) {
  QueryTrace child;
  RecordDemoTrace(&child);
  QueryTrace parent;
  {
    TraceScope root(&parent, "serve");
    parent.AdoptChild("shard", 0, child, 9);
  }
  std::string json = obs::ToChromeTraceJson(parent);
  ExpectChromeTraceShape(json, parent.spans().size());
  // Tagged wrapper names survive the export.
  EXPECT_NE(json.find("\"name\":\"shard[0]\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"serve\""), std::string::npos);
}

TEST(ChromeTraceExportTest, FlightEventsKeepTheirThread) {
  std::vector<FlightEvent> events(2);
  events[0] = FlightEvent{"alpha", 0, 0, TraceSpan::kNoTag, 100, 50, 1};
  events[1] = FlightEvent{"beta", 3, 1, 2, 120, 10, 0};
  std::string json = obs::ToChromeTraceJson(events);
  ExpectChromeTraceShape(json, events.size());
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"beta[2]\""), std::string::npos);
}

TEST(ChromeTraceExportTest, EmptyTraceIsStillLoadable) {
  QueryTrace trace;
  std::string json = obs::ToChromeTraceJson(trace);
  ExpectChromeTraceShape(json, 0);
}

#endif  // SIMSEL_DISABLE_TRACING

}  // namespace
}  // namespace simsel
