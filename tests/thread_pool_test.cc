#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/thread_pool.h"

namespace simsel {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, SingleThreadPool) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) pool.Submit([&counter] { ++counter; });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterations) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](size_t) { FAIL(); });
  SUCCEED();
}

TEST(ParallelForTest, ComputesSum) {
  ThreadPool pool(4);
  std::vector<long> partial(101, 0);
  ParallelFor(&pool, 101, [&](size_t i) { partial[i] = static_cast<long>(i); });
  long sum = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(sum, 100L * 101 / 2);
}

}  // namespace
}  // namespace simsel
