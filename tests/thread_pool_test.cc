#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "common/thread_pool.h"

namespace simsel {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, SingleThreadPool) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) pool.Submit([&counter] { ++counter; });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, DrainShutdownRunsEveryQueuedTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  size_t dropped = pool.Shutdown(ThreadPool::ShutdownMode::kDrain);
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(counter.load(), 50);
  EXPECT_TRUE(pool.shutting_down());
}

TEST(ThreadPoolTest, AbortShutdownDropsQueuedButNeverHalfRuns) {
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  std::atomic<int> started{0}, finished{0};
  // One blocker occupies the single worker so the rest stay queued.
  pool.Submit([&] {
    started.fetch_add(1);
    while (!release.load()) std::this_thread::yield();
    finished.fetch_add(1);
  });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] {
      started.fetch_add(1);
      finished.fetch_add(1);
    });
  }
  while (started.load() == 0) std::this_thread::yield();
  std::thread stopper([&] {
    // Shutdown must wait for the running blocker to finish (never abandon a
    // started task); unstarted queued tasks are dropped and counted.
    size_t dropped = pool.Shutdown(ThreadPool::ShutdownMode::kAbort);
    EXPECT_LE(dropped, 10u);
    EXPECT_EQ(started.load(), finished.load());
    EXPECT_EQ(static_cast<size_t>(finished.load()), 11u - dropped);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  release.store(true);
  stopper.join();
}

TEST(ThreadPoolTest, SubmitDuringShutdownIsRefusedNotLost) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::atomic<bool> stop_submitting{false};
  // Submissions race Shutdown: every Submit must either return true and the
  // task runs exactly once, or return false and the task never runs — the
  // server's graceful drain depends on there being no third outcome.
  std::atomic<int> accepted{0};
  std::thread submitter([&] {
    while (!stop_submitting.load()) {
      if (pool.Submit([&ran] { ran.fetch_add(1); })) {
        accepted.fetch_add(1);
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  pool.Shutdown(ThreadPool::ShutdownMode::kDrain);
  stop_submitting.store(true);
  submitter.join();
  // Drain mode: every accepted task ran; anything after shutdown was
  // refused, and a refused Submit leaves no trace.
  EXPECT_EQ(ran.load(), accepted.load());
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_EQ(pool.Shutdown(ThreadPool::ShutdownMode::kDrain), 0u);
  EXPECT_EQ(pool.Shutdown(ThreadPool::ShutdownMode::kAbort), 0u);
  EXPECT_EQ(counter.load(), 8);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterations) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](size_t) { FAIL(); });
  SUCCEED();
}

TEST(ParallelForTest, ComputesSum) {
  ThreadPool pool(4);
  std::vector<long> partial(101, 0);
  ParallelFor(&pool, 101, [&](size_t i) { partial[i] = static_cast<long>(i); });
  long sum = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(sum, 100L * 101 / 2);
}

}  // namespace
}  // namespace simsel
