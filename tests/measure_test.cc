#include <gtest/gtest.h>

#include <cmath>

#include "sim/bm25.h"
#include "sim/idf.h"
#include "sim/measure.h"
#include "sim/tfidf.h"
#include "test_util.h"

namespace simsel {
namespace {

struct Fixture {
  Fixture()
      : tokenizer(TokenizerOptions{.kind = TokenizerKind::kWord}),
        collection(Collection::Build({"main st", "main ave", "elm st",
                                      "main st suite"},
                                     tokenizer)),
        idf(collection) {}

  PreparedQuery Prepare(const SimilarityMeasure& m, const std::string& text) {
    return m.PrepareQuery(tokenizer.TokenizeCounted(text));
  }

  Tokenizer tokenizer;
  Collection collection;
  IdfMeasure idf;
};

TEST(IdfMeasureTest, IdfFormula) {
  Fixture f;
  TokenId main_id = *f.collection.dictionary().Find("main");
  // N = 4 sets, df(main) = 3.
  EXPECT_DOUBLE_EQ(f.idf.idf(main_id), std::log2(1.0 + 4.0 / 3.0));
  EXPECT_DOUBLE_EQ(f.idf.default_idf(), std::log2(5.0));
}

TEST(IdfMeasureTest, SelfSimilarityIsOne) {
  Fixture f;
  for (SetId s = 0; s < f.collection.size(); ++s) {
    PreparedQuery q = f.Prepare(f.idf, f.collection.text(s));
    EXPECT_NEAR(f.idf.Score(q, s), 1.0, 1e-6) << f.collection.text(s);
  }
}

TEST(IdfMeasureTest, ScoresAreInUnitInterval) {
  Fixture f;
  PreparedQuery q = f.Prepare(f.idf, "main st");
  for (SetId s = 0; s < f.collection.size(); ++s) {
    double score = f.idf.Score(q, s);
    EXPECT_GE(score, 0.0);
    // Set lengths are stored as float, so self-similarity may exceed 1 by
    // one float ulp's worth of relative error.
    EXPECT_LE(score, 1.0 + 1e-6);
  }
}

TEST(IdfMeasureTest, DisjointSetsScoreZero) {
  Fixture f;
  PreparedQuery q = f.Prepare(f.idf, "zzz qqq");
  for (SetId s = 0; s < f.collection.size(); ++s) {
    EXPECT_DOUBLE_EQ(f.idf.Score(q, s), 0.0);
  }
}

TEST(IdfMeasureTest, MoreOverlapScoresHigher) {
  Fixture f;
  PreparedQuery q = f.Prepare(f.idf, "main st");
  // set 0 = "main st" (full overlap), set 1 = "main ave" (one common token).
  EXPECT_GT(f.idf.Score(q, 0), f.idf.Score(q, 1));
}

TEST(IdfMeasureTest, UnknownTokensLowerScores) {
  Fixture f;
  PreparedQuery clean = f.Prepare(f.idf, "main st");
  PreparedQuery noisy = f.Prepare(f.idf, "main st unknownword");
  EXPECT_GT(clean.length, 0.0);
  EXPECT_GT(noisy.length, clean.length);
  EXPECT_EQ(noisy.unknown_tokens, 1u);
  EXPECT_GT(f.idf.Score(clean, 0), f.idf.Score(noisy, 0));
}

TEST(IdfMeasureTest, RareTokenWeighsMore) {
  Fixture f;
  // "ave" (df=1) is rarer than "main" (df=3): "x ave" should match
  // "main ave" better than "x main" matches it.
  PreparedQuery rare = f.Prepare(f.idf, "zz ave");
  PreparedQuery common = f.Prepare(f.idf, "zz main");
  EXPECT_GT(f.idf.Score(rare, 1), f.idf.Score(common, 1));
}

TEST(IdfMeasureTest, ScoreFromBitsMatchesScore) {
  Fixture f;
  PreparedQuery q = f.Prepare(f.idf, "main st suite");
  for (SetId s = 0; s < f.collection.size(); ++s) {
    DynamicBitset bits(q.tokens.size());
    for (size_t i = 0; i < q.tokens.size(); ++i) {
      if (f.collection.Contains(s, q.tokens[i])) bits.Set(i);
    }
    EXPECT_DOUBLE_EQ(f.idf.Score(q, s),
                     f.idf.ScoreFromBits(q, bits, f.idf.set_length(s)));
  }
}

TEST(IdfMeasureTest, ContributionSumsToScore) {
  Fixture f;
  PreparedQuery q = f.Prepare(f.idf, "main st");
  SetId s = 0;
  double sum = 0;
  for (size_t i = 0; i < q.tokens.size(); ++i) {
    if (f.collection.Contains(s, q.tokens[i])) {
      sum += f.idf.Contribution(q, i, f.idf.set_length(s));
    }
  }
  EXPECT_NEAR(sum, f.idf.Score(q, s), 1e-12);
}

TEST(IdfMeasureTest, PreparedTokensSortedAscending) {
  Fixture f;
  PreparedQuery q = f.Prepare(f.idf, "suite st ave main elm");
  for (size_t i = 1; i < q.tokens.size(); ++i) {
    EXPECT_LT(q.tokens[i - 1], q.tokens[i]);
  }
}

TEST(TfIdfMeasureTest, SelfSimilarityIsOne) {
  Fixture f;
  TfIdfMeasure tfidf(f.collection);
  for (SetId s = 0; s < f.collection.size(); ++s) {
    PreparedQuery q = f.Prepare(tfidf, f.collection.text(s));
    EXPECT_NEAR(tfidf.Score(q, s), 1.0, 1e-6);
  }
}

TEST(TfIdfMeasureTest, AgreesWithIdfWhenAllTfOne) {
  // All records have distinct words, so tf == 1 and TFIDF == IDF.
  Fixture f;
  TfIdfMeasure tfidf(f.collection);
  PreparedQuery qi = f.Prepare(f.idf, "main st");
  PreparedQuery qt = f.Prepare(tfidf, "main st");
  for (SetId s = 0; s < f.collection.size(); ++s) {
    EXPECT_NEAR(f.idf.Score(qi, s), tfidf.Score(qt, s), 1e-6);
  }
}

TEST(TfIdfMeasureTest, TfChangesScoresWithRepeats) {
  Tokenizer tok(TokenizerOptions{.kind = TokenizerKind::kWord});
  Collection c = Collection::Build({"main main st", "main st"}, tok);
  TfIdfMeasure tfidf(c);
  IdfMeasure idf(c);
  PreparedQuery qt = tfidf.PrepareQuery(tok.TokenizeCounted("main main st"));
  PreparedQuery qi = idf.PrepareQuery(tok.TokenizeCounted("main main st"));
  // For IDF the two sets are identical ("main main st" reduces to
  // {main, st}); TF/IDF distinguishes them.
  EXPECT_NEAR(idf.Score(qi, 0), idf.Score(qi, 1), 1e-12);
  EXPECT_GT(tfidf.Score(qt, 0), tfidf.Score(qt, 1));
}

TEST(Bm25MeasureTest, RanksExactMatchFirst) {
  Fixture f;
  Bm25Measure bm25(f.collection, /*drop_tf=*/false);
  PreparedQuery q = f.Prepare(bm25, "main st");
  double self = bm25.Score(q, 0);
  for (SetId s = 1; s < f.collection.size(); ++s) {
    EXPECT_GE(self, bm25.Score(q, s));
  }
}

TEST(Bm25MeasureTest, PrimeIgnoresTf) {
  Tokenizer tok(TokenizerOptions{.kind = TokenizerKind::kWord});
  Collection c = Collection::Build({"main main main st", "main st"}, tok);
  Bm25Measure bm25(c, /*drop_tf=*/false);
  Bm25Measure prime(c, /*drop_tf=*/true);
  PreparedQuery qb = bm25.PrepareQuery(tok.TokenizeCounted("main st"));
  PreparedQuery qp = prime.PrepareQuery(tok.TokenizeCounted("main st"));
  // BM25 scores the two sets differently (tf and doc length); BM25' only
  // sees the same two distinct tokens with equal set sizes.
  EXPECT_NE(bm25.Score(qb, 0), bm25.Score(qb, 1));
  EXPECT_DOUBLE_EQ(prime.Score(qp, 0), prime.Score(qp, 1));
}

TEST(Bm25MeasureTest, ZeroForDisjoint) {
  Fixture f;
  Bm25Measure bm25(f.collection, false);
  PreparedQuery q = f.Prepare(bm25, "zzz");
  EXPECT_DOUBLE_EQ(bm25.Score(q, 0), 0.0);
}

TEST(MeasureFactoryTest, MakesAllKinds) {
  Fixture f;
  for (MeasureKind kind : {MeasureKind::kIdf, MeasureKind::kTfIdf,
                           MeasureKind::kBm25, MeasureKind::kBm25Prime}) {
    auto m = MakeMeasure(kind, f.collection);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->name(), MeasureKindName(kind));
    PreparedQuery q = m->PrepareQuery(
        f.tokenizer.TokenizeCounted(f.collection.text(0)));
    EXPECT_GT(m->Score(q, 0), 0.0);
  }
}

TEST(MeasureTest, LengthsOrderedByTokenMass) {
  Fixture f;
  // "main st suite" has three tokens vs "main st" two: its IDF length must
  // be at least as large.
  SetId small = 0, big = 3;
  EXPECT_GT(f.idf.set_length(big), f.idf.set_length(small));
}

}  // namespace
}  // namespace simsel
