#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unordered_set>

#include "gen/corpus.h"
#include "gen/error_model.h"
#include "gen/workload.h"
#include "gen/zipf.h"

namespace simsel {
namespace {

// Levenshtein distance for validating the error model.
int EditDistance(const std::string& a, const std::string& b) {
  std::vector<int> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= b.size(); ++j) {
      int sub = prev[j - 1] + (a[i - 1] != b[j - 1]);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

TEST(ZipfTest, CdfIsValidDistribution) {
  ZipfSampler zipf(100, 1.0);
  double total = 0;
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_GT(zipf.Pmf(i), 0.0);
    total += zipf.Pmf(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, SkewConcentratesMassOnLowRanks) {
  ZipfSampler zipf(1000, 1.0);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(100));
  Rng rng(5);
  size_t low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) low += (zipf.Sample(&rng) < 10);
  // Top-10 ranks of Zipf(1.0, 1000) carry ~39% of the mass.
  EXPECT_GT(low, n / 4u);
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (size_t i = 0; i < 10; ++i) EXPECT_NEAR(zipf.Pmf(i), 0.1, 1e-9);
}

TEST(ZipfTest, SamplesInRange) {
  ZipfSampler zipf(7, 1.2);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(&rng), 7u);
}

TEST(CorpusTest, DeterministicForSeed) {
  CorpusOptions o;
  o.num_records = 100;
  o.vocab_size = 50;
  Corpus a = GenerateCorpus(o);
  Corpus b = GenerateCorpus(o);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.vocabulary, b.vocabulary);
}

TEST(CorpusTest, SeedChangesOutput) {
  CorpusOptions o;
  o.num_records = 100;
  o.vocab_size = 50;
  Corpus a = GenerateCorpus(o);
  o.seed = o.seed + 1;
  Corpus b = GenerateCorpus(o);
  EXPECT_NE(a.records, b.records);
}

TEST(CorpusTest, RespectsSizes) {
  CorpusOptions o;
  o.num_records = 250;
  o.vocab_size = 80;
  o.min_words = 2;
  o.max_words = 3;
  Corpus c = GenerateCorpus(o);
  EXPECT_EQ(c.records.size(), 250u);
  EXPECT_EQ(c.vocabulary.size(), 80u);
  for (const std::string& rec : c.records) {
    size_t words = 1 + std::count(rec.begin(), rec.end(), ' ');
    EXPECT_GE(words, 2u);
    EXPECT_LE(words, 3u);
  }
}

TEST(CorpusTest, WordLengthsWithinBounds) {
  CorpusOptions o;
  o.num_records = 10;
  o.vocab_size = 200;
  o.min_word_len = 3;
  o.max_word_len = 8;
  Corpus c = GenerateCorpus(o);
  for (const std::string& w : c.vocabulary) {
    EXPECT_GE(w.size(), 3u);
    EXPECT_LE(w.size(), 8u);
  }
}

TEST(CorpusTest, VocabularyIsDistinct) {
  CorpusOptions o;
  o.num_records = 1;
  o.vocab_size = 500;
  Corpus c = GenerateCorpus(o);
  std::unordered_set<std::string> set(c.vocabulary.begin(),
                                      c.vocabulary.end());
  EXPECT_EQ(set.size(), c.vocabulary.size());
}

TEST(CorpusTest, LoadFromFile) {
  auto path =
      (std::filesystem::temp_directory_path() / "simsel_corpus.txt").string();
  {
    std::ofstream out(path);
    out << "first record\n\nsecond record\nthird\n";
  }
  Result<Corpus> c = LoadCorpusFromFile(path);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c->records.size(), 3u);
  EXPECT_EQ(c->records[0], "first record");
  EXPECT_EQ(c->records[2], "third");

  Result<Corpus> capped = LoadCorpusFromFile(path, 2);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->records.size(), 2u);
  std::remove(path.c_str());

  Result<Corpus> missing = LoadCorpusFromFile(path + ".nope");
  EXPECT_FALSE(missing.ok());
}

TEST(ErrorModelTest, ModificationsBoundEditDistance) {
  Rng rng(17);
  for (int k = 0; k <= 3; ++k) {
    for (int trial = 0; trial < 50; ++trial) {
      std::string src = "representative";
      std::string dst = ApplyModifications(src, k, &rng);
      // A swap counts as at most 2 unit edits.
      EXPECT_LE(EditDistance(src, dst), 2 * k);
    }
  }
}

TEST(ErrorModelTest, ZeroModificationsIsIdentity) {
  Rng rng(1);
  EXPECT_EQ(ApplyModifications("hello", 0, &rng), "hello");
}

TEST(ErrorModelTest, EditsNeverEmptyTheString) {
  Rng rng(23);
  std::string s = "ab";
  for (int i = 0; i < 100; ++i) {
    s = ApplyEdit(s, EditKind::kDelete, &rng);
    EXPECT_GE(s.size(), 1u);
  }
}

TEST(ErrorModelTest, InsertGrowsDeleteShrinks) {
  Rng rng(29);
  EXPECT_EQ(ApplyEdit("abc", EditKind::kInsert, &rng).size(), 4u);
  EXPECT_EQ(ApplyEdit("abc", EditKind::kDelete, &rng).size(), 2u);
  EXPECT_EQ(ApplyEdit("abc", EditKind::kSwap, &rng).size(), 3u);
  EXPECT_EQ(ApplyEdit("abc", EditKind::kSubstitute, &rng).size(), 3u);
}

TEST(ErrorModelTest, ErrorRateDecreasesWithLevel) {
  for (int level = 1; level < 8; ++level) {
    EXPECT_GT(ErrorRateForLevel(level), ErrorRateForLevel(level + 1));
  }
  EXPECT_GT(ErrorRateForLevel(8), 0.0);
  EXPECT_LT(ErrorRateForLevel(1), 1.0);
}

TEST(ErrorModelTest, DirtyDatasetStructure) {
  std::vector<std::string> clean = {"alpha", "beta", "gamma"};
  DirtyDatasetOptions o;
  o.level = 8;
  o.num_clean = 3;
  o.duplicates_per_record = 2;
  LabeledDataset ds = MakeDirtyDataset(clean, o);
  EXPECT_EQ(ds.num_clean, 3u);
  ASSERT_EQ(ds.records.size(), 9u);
  ASSERT_EQ(ds.source.size(), 9u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ds.records[i], clean[i]);
    EXPECT_EQ(ds.source[i], i);
  }
  for (size_t i = 3; i < 9; ++i) EXPECT_LT(ds.source[i], 3u);
}

TEST(ErrorModelTest, HigherLevelsAreCleaner) {
  std::vector<std::string> clean;
  for (int i = 0; i < 50; ++i) {
    clean.push_back("record_number_" + std::to_string(i) + "_payload");
  }
  auto total_distance = [&](int level) {
    DirtyDatasetOptions o;
    o.level = level;
    o.num_clean = clean.size();
    o.duplicates_per_record = 2;
    LabeledDataset ds = MakeDirtyDataset(clean, o);
    int dist = 0;
    for (size_t i = ds.num_clean; i < ds.records.size(); ++i) {
      dist += EditDistance(ds.records[i], clean[ds.source[i]]);
    }
    return dist;
  };
  EXPECT_GT(total_distance(1), total_distance(8));
}

TEST(WorkloadTest, BucketsByGramCount) {
  std::vector<std::string> records = {"tiny words here",
                                      "somewhatlonger tokens inside",
                                      "unreasonablylongsingleword"};
  Tokenizer grams;  // q=3 padded
  WorkloadOptions o;
  o.num_queries = 20;
  o.min_tokens = 6;
  o.max_tokens = 10;
  o.modifications = 0;
  Workload wl = GenerateWordWorkload(records, grams, o);
  ASSERT_EQ(wl.queries.size(), 20u);
  for (const std::string& q : wl.queries) {
    size_t grams_count = grams.CountTokens(q);
    EXPECT_GE(grams_count, 6u);
    EXPECT_LE(grams_count, 10u);
  }
}

TEST(WorkloadTest, ModificationsChangeQueries) {
  std::vector<std::string> records = {"alphabet soup kitchen counter"};
  Tokenizer grams;
  WorkloadOptions o;
  o.num_queries = 10;
  o.min_tokens = 1;
  o.max_tokens = 30;
  o.modifications = 2;
  Workload wl = GenerateWordWorkload(records, grams, o);
  ASSERT_EQ(wl.queries.size(), 10u);
  int changed = 0;
  for (size_t i = 0; i < wl.queries.size(); ++i) {
    changed += (wl.queries[i] != wl.sources[i]);
  }
  EXPECT_GT(changed, 5);
}

TEST(WorkloadTest, EmptyWhenBucketUnpopulated) {
  std::vector<std::string> records = {"short"};
  Tokenizer grams;
  WorkloadOptions o;
  o.min_tokens = 50;
  o.max_tokens = 60;
  Workload wl = GenerateWordWorkload(records, grams, o);
  EXPECT_TRUE(wl.queries.empty());
}

TEST(WorkloadTest, DeterministicForSeed) {
  std::vector<std::string> records = {"several distinct words for sampling",
                                      "another record with more words"};
  Tokenizer grams;
  WorkloadOptions o;
  o.num_queries = 15;
  o.min_tokens = 1;
  o.max_tokens = 30;
  o.modifications = 1;
  Workload a = GenerateWordWorkload(records, grams, o);
  Workload b = GenerateWordWorkload(records, grams, o);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.sources, b.sources);
}

}  // namespace
}  // namespace simsel
