#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bitset.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace simsel {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing file");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing file");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing file");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "CORRUPTION");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(19);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(v.size(), [&](size_t i, size_t j) { std::swap(v[i], v[j]); });
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(BitsetTest, SetTestClear) {
  DynamicBitset bits(70);  // spans two words
  EXPECT_TRUE(bits.None());
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(69);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(69));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 4u);
  bits.Clear(64);
  EXPECT_FALSE(bits.Test(64));
  EXPECT_EQ(bits.Count(), 3u);
}

TEST(BitsetTest, AllAndNone) {
  DynamicBitset bits(5);
  EXPECT_TRUE(bits.None());
  EXPECT_FALSE(bits.All());
  for (size_t i = 0; i < 5; ++i) bits.Set(i);
  EXPECT_TRUE(bits.All());
  EXPECT_FALSE(bits.None());
}

TEST(MetricsTest, MergeAddsFields) {
  AccessCounters a, b;
  a.elements_read = 5;
  a.hash_probes = 2;
  b.elements_read = 7;
  b.rand_page_reads = 3;
  a.Merge(b);
  EXPECT_EQ(a.elements_read, 12u);
  EXPECT_EQ(a.hash_probes, 2u);
  EXPECT_EQ(a.rand_page_reads, 3u);
}

TEST(MetricsTest, PruningPower) {
  AccessCounters c;
  c.elements_total = 100;
  c.elements_read = 25;
  EXPECT_DOUBLE_EQ(c.PruningPower(), 0.75);
  c.elements_read = 0;
  EXPECT_DOUBLE_EQ(c.PruningPower(), 1.0);
  AccessCounters empty;
  EXPECT_DOUBLE_EQ(empty.PruningPower(), 0.0);
}

TEST(MetricsTest, PruningPowerClampedWhenOverRead) {
  AccessCounters c;
  c.elements_total = 10;
  c.elements_read = 15;  // random-access algorithms may re-read
  EXPECT_DOUBLE_EQ(c.PruningPower(), 0.0);
}

TEST(MetricsTest, ToStringMentionsCounts) {
  AccessCounters c;
  c.elements_read = 42;
  std::string s = c.ToString();
  EXPECT_NE(s.find("read=42"), std::string::npos);
}

TEST(TimerTest, ElapsedIncreasesMonotonically) {
  WallTimer t;
  double a = t.ElapsedSeconds();
  double b = t.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

}  // namespace
}  // namespace simsel
