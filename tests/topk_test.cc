#include <gtest/gtest.h>

#include "core/topk.h"
#include "test_util.h"

namespace simsel {
namespace {

using testing_util::MakeQueries;
using testing_util::MakeSelector;

const SimilaritySelector& Selector() {
  static const SimilaritySelector* selector =
      new SimilaritySelector(MakeSelector(400, /*seed=*/121, false));
  return *selector;
}

// Linear top-k truncated to positive scores, the universe TopKSelect can see.
std::vector<Match> ReferenceTopK(const PreparedQuery& q, size_t k) {
  QueryResult r = LinearScanTopK(Selector().measure(),
                                 Selector().collection(), q, k);
  std::vector<Match> out;
  for (const Match& m : r.matches) {
    if (m.score > 0.0) out.push_back(m);
  }
  return out;
}

class TopKParam : public ::testing::TestWithParam<size_t> {};

TEST_P(TopKParam, MatchesLinearScanTopK) {
  const size_t k = GetParam();
  const SimilaritySelector& sel = Selector();
  std::vector<std::string> texts;
  for (SetId s = 0; s < sel.collection().size(); ++s) {
    texts.push_back(sel.collection().text(s));
  }
  for (const std::string& query : MakeQueries(texts, 15, 131)) {
    PreparedQuery q = sel.Prepare(query);
    std::vector<Match> expected = ReferenceTopK(q, k);
    QueryResult actual = TopKSelect(sel.index(), sel.measure(), q, k, {});
    testing_util::ExpectSameMatches(expected, actual.matches,
                                    "topk k=" + std::to_string(k) +
                                        " q=" + query);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKParam, ::testing::Values(1, 3, 10, 50),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(TopKTest, AblationsStayExact) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(17));
  std::vector<Match> expected = ReferenceTopK(q, 5);
  for (int variant = 0; variant < 3; ++variant) {
    SelectOptions o;
    if (variant == 0) o.length_bounding = false;
    if (variant == 1) o.order_preservation = false;
    if (variant == 2) o.magnitude_bound = false;
    QueryResult actual = TopKSelect(sel.index(), sel.measure(), q, 5, o);
    testing_util::ExpectSameMatches(expected, actual.matches,
                                    "variant " + std::to_string(variant));
  }
}

TEST(TopKTest, RankOrderIsScoreDescending) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(3));
  QueryResult r = TopKSelect(sel.index(), sel.measure(), q, 20, {});
  for (size_t i = 1; i < r.matches.size(); ++i) {
    EXPECT_TRUE(r.matches[i - 1].score > r.matches[i].score ||
                (r.matches[i - 1].score == r.matches[i].score &&
                 r.matches[i - 1].id < r.matches[i].id));
  }
}

TEST(TopKTest, TopOneIsSelfForExactQuery) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(29));
  QueryResult r = TopKSelect(sel.index(), sel.measure(), q, 1, {});
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_NEAR(r.matches[0].score, 1.0, 1e-5);
}

TEST(TopKTest, KZeroAndEmptyQuery) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(1));
  EXPECT_TRUE(TopKSelect(sel.index(), sel.measure(), q, 0, {}).matches.empty());
  PreparedQuery empty = sel.Prepare("");
  EXPECT_TRUE(
      TopKSelect(sel.index(), sel.measure(), empty, 5, {}).matches.empty());
}

TEST(TopKTest, PrunesRelativeToFullScan) {
  // With a small k the dynamic threshold rises quickly; the algorithm
  // should not read every posting of every list.
  const SimilaritySelector& sel = Selector();
  uint64_t read = 0, total = 0;
  std::vector<std::string> texts;
  for (SetId s = 0; s < sel.collection().size(); ++s) {
    texts.push_back(sel.collection().text(s));
  }
  for (const std::string& query : MakeQueries(texts, 10, 141)) {
    PreparedQuery q = sel.Prepare(query);
    QueryResult r = TopKSelect(sel.index(), sel.measure(), q, 1, {});
    read += r.counters.elements_read;
    total += r.counters.elements_total;
  }
  EXPECT_LT(read, total);
}

TEST(TopKTest, FacadeEntryPoint) {
  const SimilaritySelector& sel = Selector();
  QueryResult r = sel.SelectTopK(sel.collection().text(2), 3);
  EXPECT_LE(r.matches.size(), 3u);
  EXPECT_FALSE(r.matches.empty());
}

}  // namespace
}  // namespace simsel
