#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace simsel {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::JsonWriter;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::QueryTrace;
using obs::TraceScope;

// ---------------------------------------------------------------- histogram

TEST(HistogramTest, ExactBelowSubBuckets) {
  Histogram h;
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) h.Observe(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(Histogram::kSubBuckets));
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(s.buckets[Histogram::BucketIndex(v)], 1u) << v;
    EXPECT_EQ(Histogram::BucketUpperBound(Histogram::BucketIndex(v)), v);
  }
}

TEST(HistogramTest, BucketIndexMonotoneAndConsistent) {
  int prev = -1;
  for (uint64_t v = 0; v < 100000; v = (v < 64 ? v + 1 : v + v / 7)) {
    int idx = Histogram::BucketIndex(v);
    EXPECT_GE(idx, prev) << v;
    EXPECT_LT(idx, Histogram::kNumBuckets);
    EXPECT_LE(v, Histogram::BucketUpperBound(idx)) << v;
    prev = idx;
  }
  // Each bucket's upper bound maps back into that bucket.
  for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperBound(i)), i) << i;
  }
}

TEST(HistogramTest, QuantilesOnUniformDistribution) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Observe(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 1000u * 1001u / 2);
  EXPECT_EQ(s.max, 1000u);
  // Bucketed quantiles over-estimate by at most one sub-bucket (12.5%).
  EXPECT_GE(s.Quantile(0.50), 500u);
  EXPECT_LE(s.Quantile(0.50), 563u);
  EXPECT_GE(s.Quantile(0.90), 900u);
  EXPECT_LE(s.Quantile(0.90), 1013u);
  EXPECT_GE(s.Quantile(0.99), 990u);
  // Quantiles never exceed the observed maximum.
  EXPECT_LE(s.Quantile(0.99), 1000u);
  EXPECT_EQ(s.Quantile(1.0), 1000u);
  EXPECT_DOUBLE_EQ(s.Mean(), 500.5);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  HistogramSnapshot s;
  EXPECT_EQ(s.Quantile(0.5), 0u);
  EXPECT_EQ(s.Quantile(0.0), 0u);
  EXPECT_EQ(s.Quantile(1.0), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
}

TEST(HistogramTest, SingleBucketQuantileIsTheObservedValue) {
  // Every observation in one bucket: any quantile must resolve to the
  // observed value itself (bucket bound clamped to the recorded max).
  Histogram h;
  for (int i = 0; i < 17; ++i) h.Observe(42);
  HistogramSnapshot s = h.Snapshot();
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(s.Quantile(q), 42u) << q;
  }
}

TEST(HistogramTest, OverflowValuesClampToTheLastBucket) {
  // Values beyond the 2^40 bucket range must land in the final bucket, not
  // index out of bounds, and quantiles must stay finite: the last bucket's
  // bound when it is below the observed max, never above the max.
  const uint64_t huge = 1ull << 50;
  EXPECT_EQ(Histogram::BucketIndex(huge), Histogram::kNumBuckets - 1);
  Histogram h;
  h.Observe(huge);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.max, huge);
  const uint64_t last_bound =
      Histogram::BucketUpperBound(Histogram::kNumBuckets - 1);
  EXPECT_EQ(s.Quantile(1.0), std::min(last_bound, huge));
  EXPECT_LE(s.Quantile(0.5), huge);
}

TEST(HistogramTest, MergeIntoEmptySnapshotResizesBuckets) {
  // A default-constructed snapshot has no bucket cells; Merge must grow it
  // instead of dropping counts, and quantiles must work afterwards.
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Observe(v);
  HistogramSnapshot from = h.Snapshot();
  HistogramSnapshot into;  // empty, zero-length buckets
  into.Merge(from);
  EXPECT_EQ(into.buckets, from.buckets);
  EXPECT_EQ(into.count, from.count);
  EXPECT_EQ(into.sum, from.sum);
  EXPECT_EQ(into.max, from.max);
  EXPECT_EQ(into.Quantile(1.0), from.Quantile(1.0));
  // Merging the empty snapshot the other way is a no-op.
  HistogramSnapshot copy = from;
  copy.Merge(HistogramSnapshot{});
  EXPECT_EQ(copy.buckets, from.buckets);
  EXPECT_EQ(copy.Quantile(0.9), from.Quantile(0.9));
}

TEST(HistogramTest, SnapshotMergeMatchesCombinedObservation) {
  Histogram a, b, combined;
  for (uint64_t v = 1; v <= 500; ++v) {
    a.Observe(v);
    combined.Observe(v);
  }
  for (uint64_t v = 501; v <= 1000; ++v) {
    b.Observe(v * 3);
    combined.Observe(v * 3);
  }
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  HistogramSnapshot expect = combined.Snapshot();
  EXPECT_EQ(merged.count, expect.count);
  EXPECT_EQ(merged.sum, expect.sum);
  EXPECT_EQ(merged.max, expect.max);
  EXPECT_EQ(merged.buckets, expect.buckets);
  EXPECT_EQ(merged.Quantile(0.9), expect.Quantile(0.9));
}

// ------------------------------------------------------- counters & gauges

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  ThreadPool pool(8);
  constexpr int kTasks = 64;
  constexpr int kPerTask = 10000;
  for (int t = 0; t < kTasks; ++t) {
    pool.Submit([&c] {
      for (int i = 0; i < kPerTask; ++i) c.Increment();
    });
  }
  pool.Wait();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kTasks) * kPerTask);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(42);
  g.Add(-50);
  EXPECT_EQ(g.Value(), -8);
}

// ----------------------------------------------------------------- registry

TEST(MetricsRegistryTest, SameNameSamePointer) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x_total");
  Counter* b = reg.GetCounter("x_total");
  Counter* c = reg.GetCounter("x_total", obs::LabelPair("algo", "SF"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(reg.GetGauge("g"), nullptr);
  EXPECT_NE(reg.GetHistogram("h"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotIsDeterministicAndComplete) {
  MetricsRegistry reg;
  reg.GetCounter("b_total")->Increment(2);
  reg.GetCounter("a_total", obs::LabelPair("algo", "SF"))->Increment(7);
  reg.GetGauge("depth")->Set(-3);
  reg.GetHistogram("lat_usec")->Observe(100);
  MetricsSnapshot s = reg.Snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  // Sorted by name, then labels.
  EXPECT_EQ(s.counters[0].first.name, "a_total");
  EXPECT_EQ(s.counters[0].first.labels, "algo=\"SF\"");
  EXPECT_EQ(s.counters[0].second, 7u);
  EXPECT_EQ(s.counters[1].first.name, "b_total");
  EXPECT_EQ(s.counters[1].second, 2u);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_EQ(s.gauges[0].second, -3);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].second.count, 1u);
}

TEST(MetricsRegistryTest, LabelPairEscapes) {
  EXPECT_EQ(obs::LabelPair("k", "v"), "k=\"v\"");
  EXPECT_EQ(obs::LabelPair("k", "a\"b\\c\nd"), "k=\"a\\\"b\\\\c\\nd\"");
}

TEST(MetricsRegistryTest, GlobalHoldsBuiltInFamilies) {
  // The library's instrumentation registers its families lazily; poke one
  // so the global registry is non-empty regardless of test order.
  MetricsRegistry::Global().GetCounter("obs_test_probe_total")->Increment();
  MetricsSnapshot s = MetricsRegistry::Global().Snapshot();
  EXPECT_FALSE(s.counters.empty());
}

// -------------------------------------------------------------------- trace

#ifndef SIMSEL_DISABLE_TRACING
TEST(TraceTest, SpanNestingByDepth) {
  QueryTrace trace;
  {
    TraceScope root(&trace, "query");
    {
      TraceScope tok(&trace, "tokenize");
      tok.SetItems(12);
    }
    {
      TraceScope algo(&trace, "SF");
      TraceScope inner(&trace, "rounds");
      inner.AddItems(3);
      inner.AddItems(4);
    }
  }
  ASSERT_EQ(trace.spans().size(), 4u);
  EXPECT_STREQ(trace.spans()[0].name, "query");
  EXPECT_EQ(trace.spans()[0].depth, 0u);
  EXPECT_STREQ(trace.spans()[1].name, "tokenize");
  EXPECT_EQ(trace.spans()[1].depth, 1u);
  EXPECT_EQ(trace.spans()[1].items, 12u);
  EXPECT_STREQ(trace.spans()[2].name, "SF");
  EXPECT_EQ(trace.spans()[2].depth, 1u);
  EXPECT_STREQ(trace.spans()[3].name, "rounds");
  EXPECT_EQ(trace.spans()[3].depth, 2u);
  EXPECT_EQ(trace.spans()[3].items, 7u);
  // Children close before parents; all spans have a recorded duration.
  for (const obs::TraceSpan& span : trace.spans()) {
    EXPECT_LE(span.start_ns + span.dur_ns,
              trace.spans()[0].start_ns + trace.spans()[0].dur_ns + 1);
  }
  std::string rendered = trace.ToString();
  EXPECT_NE(rendered.find("query"), std::string::npos);
  EXPECT_NE(rendered.find("  tokenize"), std::string::npos);
  EXPECT_NE(rendered.find("items=12"), std::string::npos);

  trace.Clear();
  EXPECT_TRUE(trace.empty());
}
#endif  // SIMSEL_DISABLE_TRACING

TEST(TraceTest, NullTraceIsInert) {
  TraceScope scope(nullptr, "noop");
  scope.SetItems(5);
  EXPECT_FALSE(scope.active());
}

// ---------------------------------------------------------------- exporters

TEST(ExportTest, PrometheusTextFormat) {
  MetricsRegistry reg;
  reg.GetCounter("q_total", obs::LabelPair("algo", "SF"))->Increment(5);
  reg.GetGauge("depth")->Set(2);
  Histogram* h = reg.GetHistogram("lat");
  h->Observe(1);
  h->Observe(1);
  h->Observe(300);
  std::string text = obs::ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE q_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("q_total{algo=\"SF\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("depth 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 302\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 3\n"), std::string::npos);
  // Every non-comment line is `series value`.
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos);  // text ends with a newline
    std::string line = text.substr(start, end - start);
    if (line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string::npos) << line;
    }
    start = end + 1;
  }
}

TEST(ExportTest, JsonIsBalancedAndCarriesQuantiles) {
  MetricsRegistry reg;
  reg.GetCounter("c_total")->Increment(9);
  Histogram* h = reg.GetHistogram("lat");
  for (uint64_t v = 1; v <= 100; ++v) h->Observe(v);
  std::string json = obs::ToJson(reg.Snapshot());
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_NE(json.find("\"c_total\":9"), std::string::npos);
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(ExportTest, JsonWriterEscapesAndNests) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a\"b");
  w.BeginArray();
  w.Uint(1);
  w.String("x\ny");
  w.Bool(false);
  w.Raw("{\"z\":2}");
  w.EndArray();
  w.Key("d");
  w.Double(0.5);
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\\\"b\":[1,\"x\\ny\",false,{\"z\":2}],\"d\":0.5}");
}

// ------------------------------------------------------------------ logging

class CaptureSink : public obs::LogSink {
 public:
  void Write(const obs::LogRecord& record) override {
    records.push_back(record);
  }
  std::vector<obs::LogRecord> records;
};

TEST(LogTest, LevelsFilterAndSinkReceives) {
  CaptureSink sink;
  obs::LogSink* prev = obs::SetLogSink(&sink);
  obs::LogLevel prev_level = obs::MinLogLevel();
  obs::SetMinLogLevel(obs::LogLevel::kInfo);

  int evaluations = 0;
  auto count_eval = [&evaluations] {
    ++evaluations;
    return 7;
  };
  SIMSEL_LOG(kDebug) << "dropped " << count_eval();
  SIMSEL_LOG(kInfo) << "kept " << count_eval();
  SIMSEL_LOG_IF(kError, false) << "conditional " << count_eval();

  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_EQ(sink.records[0].level, obs::LogLevel::kInfo);
  EXPECT_EQ(sink.records[0].message, "kept 7");
  EXPECT_EQ(evaluations, 1);  // lazy formatting: dropped levels never run

  std::string line = obs::FormatLogRecord(sink.records[0]);
  EXPECT_EQ(line[0], 'I');
  EXPECT_NE(line.find("obs_test.cc:"), std::string::npos);
  EXPECT_NE(line.find("] kept 7"), std::string::npos);

  obs::SetMinLogLevel(prev_level);
  obs::SetLogSink(prev);
}

}  // namespace
}  // namespace simsel
