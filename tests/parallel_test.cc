#include <gtest/gtest.h>

#include <string>

#include "core/linear_scan.h"
#include "core/parallel.h"
#include "obs/trace.h"
#include "test_util.h"

namespace simsel {
namespace {

using testing_util::ExpectSameMatches;
using testing_util::MakeQueries;
using testing_util::MakeSelector;

const SimilaritySelector& Selector() {
  static const SimilaritySelector* selector =
      new SimilaritySelector(MakeSelector(400, /*seed=*/201, false));
  return *selector;
}

TEST(BatchSelectTest, MatchesSequentialExecution) {
  const SimilaritySelector& sel = Selector();
  std::vector<std::string> texts;
  for (SetId s = 0; s < sel.collection().size(); ++s) {
    texts.push_back(sel.collection().text(s));
  }
  std::vector<std::string> queries = MakeQueries(texts, 40, 211);
  ThreadPool pool(4);
  std::vector<QueryResult> parallel =
      BatchSelect(sel, queries, 0.7, AlgorithmKind::kSf, {}, &pool);
  ASSERT_EQ(parallel.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryResult sequential = sel.Select(queries[i], 0.7, AlgorithmKind::kSf);
    ExpectSameMatches(sequential.matches, parallel[i].matches,
                      "batch query " + std::to_string(i));
  }
}

TEST(BatchSelectTest, WorksWithEveryAlgorithm) {
  const SimilaritySelector& sel = Selector();
  std::vector<std::string> queries = {sel.collection().text(0),
                                      sel.collection().text(1)};
  ThreadPool pool(2);
  for (AlgorithmKind kind :
       {AlgorithmKind::kSf, AlgorithmKind::kInra, AlgorithmKind::kHybrid,
        AlgorithmKind::kIta, AlgorithmKind::kSortById}) {
    std::vector<QueryResult> results =
        BatchSelect(sel, queries, 0.8, kind, {}, &pool);
    EXPECT_FALSE(results[0].matches.empty()) << AlgorithmKindName(kind);
    EXPECT_FALSE(results[1].matches.empty()) << AlgorithmKindName(kind);
  }
}

#ifndef SIMSEL_DISABLE_TRACING
TEST(BatchSelectTest, TracedBatchReturnsStitchedSpanTrees) {
  // Regression: batch workers used to run traceless (the caller's trace was
  // stripped for thread safety); now each worker records a private child
  // trace that is stitched into the caller's at the join.
  const SimilaritySelector& sel = Selector();
  std::vector<std::string> queries = {sel.collection().text(0),
                                      sel.collection().text(5),
                                      sel.collection().text(9)};
  ThreadPool pool(4);
  obs::QueryTrace trace;
  SelectOptions options;
  options.trace = &trace;
  std::vector<QueryResult> results =
      BatchSelect(sel, queries, 0.7, AlgorithmKind::kSf, options, &pool);
  ASSERT_EQ(results.size(), queries.size());
  ASSERT_FALSE(trace.empty());
  const std::vector<obs::TraceSpan>& spans = trace.spans();
  EXPECT_STREQ(spans[0].name, "batch");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[0].items, queries.size());
  // One batch_query[i] wrapper per query in query order, each with at least
  // one worker-recorded span beneath it; every result reports the stitched
  // parent trace.
  std::string structure = trace.StructureString();
  size_t pos = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    std::string wrapper = "1:batch_query[" + std::to_string(i) + "]\n";
    size_t at = structure.find(wrapper, pos);
    ASSERT_NE(at, std::string::npos) << structure;
    pos = at + wrapper.size();
    EXPECT_EQ(results[i].trace, &trace);
  }
  size_t worker_spans = 0;
  for (const obs::TraceSpan& s : spans) worker_spans += (s.depth == 2);
  EXPECT_GE(worker_spans, queries.size());
  // The stitched shape is byte-stable run to run.
  obs::QueryTrace again;
  SelectOptions repeat;
  repeat.trace = &again;
  BatchSelect(sel, queries, 0.7, AlgorithmKind::kSf, repeat, &pool);
  EXPECT_EQ(trace.StructureString(), again.StructureString());
}
#endif  // SIMSEL_DISABLE_TRACING

TEST(ParallelLinearScanTest, ExactlyMatchesSerialScan) {
  const SimilaritySelector& sel = Selector();
  ThreadPool pool(4);
  for (double tau : {0.3, 0.7, 0.9}) {
    for (SetId s = 0; s < 10; ++s) {
      PreparedQuery q = sel.Prepare(sel.collection().text(s));
      QueryResult serial =
          LinearScanSelect(sel.measure(), sel.collection(), q, tau);
      QueryResult parallel = ParallelLinearScanSelect(
          sel.measure(), sel.collection(), q, tau, &pool);
      ExpectSameMatches(serial.matches, parallel.matches,
                        "tau=" + std::to_string(tau));
      EXPECT_EQ(parallel.counters.rows_scanned, sel.collection().size());
    }
  }
}

TEST(ParallelLinearScanTest, MorePoolThreadsThanSets) {
  std::vector<std::string> records = {"alpha", "beta"};
  SimilaritySelector sel = SimilaritySelector::Build(records);
  ThreadPool pool(8);
  PreparedQuery q = sel.Prepare("alpha");
  QueryResult r =
      ParallelLinearScanSelect(sel.measure(), sel.collection(), q, 0.9, &pool);
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_EQ(r.matches[0].id, 0u);
}

TEST(ParallelSortByIdTest, MatchesSequentialMerge) {
  const SimilaritySelector& sel = Selector();
  for (size_t threads : {1u, 3u, 8u}) {
    ThreadPool pool(threads);
    for (double tau : {0.5, 0.9}) {
      for (SetId s = 0; s < 10; ++s) {
        PreparedQuery q = sel.Prepare(sel.collection().text(s * 11));
        QueryResult serial =
            sel.SelectPrepared(q, tau, AlgorithmKind::kSortById, {});
        QueryResult parallel =
            ParallelSortByIdSelect(sel.index(), sel.measure(), q, tau, &pool);
        ExpectSameMatches(serial.matches, parallel.matches,
                          "threads=" + std::to_string(threads));
        // The shards cover every posting exactly once.
        EXPECT_EQ(parallel.counters.elements_read,
                  serial.counters.elements_read);
        EXPECT_EQ(parallel.counters.elements_total,
                  serial.counters.elements_total);
      }
    }
  }
}

TEST(ParallelSortByIdTest, EmptyQueryAndNoMatches) {
  const SimilaritySelector& sel = Selector();
  ThreadPool pool(4);
  PreparedQuery empty = sel.Prepare("");
  EXPECT_TRUE(ParallelSortByIdSelect(sel.index(), sel.measure(), empty, 0.5,
                                     &pool)
                  .matches.empty());
  PreparedQuery q = sel.Prepare(sel.collection().text(0));
  EXPECT_TRUE(ParallelSortByIdSelect(sel.index(), sel.measure(), q, 1.5,
                                     &pool)
                  .matches.empty());
}

TEST(SortByIdShardRangeTest, LastShardReachesPastMaxUint32WithoutWrap) {
  // Regression: the shard bounds were computed in uint32_t, so the last
  // shard's exclusive bound max_id + 1 wrapped to 0 when max_id was
  // UINT32_MAX — the shard became empty and its matches were dropped.
  for (size_t shards : {1u, 2u, 7u, 16u}) {
    auto [lo, hi] =
        internal::SortByIdShardRange(UINT32_MAX, shards, shards - 1);
    EXPECT_EQ(hi, static_cast<uint64_t>(UINT32_MAX) + 1) << shards;
    EXPECT_LT(lo, hi) << shards;  // the boundary id itself is covered
  }
}

TEST(SortByIdShardRangeTest, ShardsPartitionTheIdSpace) {
  for (uint32_t max_id : {0u, 1u, 7u, 1000u, UINT32_MAX}) {
    for (size_t shards : {1u, 2u, 3u, 8u, 16u}) {
      uint64_t prev = 0;
      for (size_t s = 0; s < shards; ++s) {
        auto [lo, hi] = internal::SortByIdShardRange(max_id, shards, s);
        EXPECT_EQ(lo, prev) << "max_id=" << max_id << " shard " << s;
        EXPECT_LE(lo, hi) << "max_id=" << max_id << " shard " << s;
        prev = hi;
      }
      EXPECT_EQ(prev, static_cast<uint64_t>(max_id) + 1)
          << "max_id=" << max_id << " shards=" << shards;
    }
  }
}

TEST(SortByIdShardRangeTest, MoreShardsThanIdsYieldsEmptyTailRanges) {
  // max_id = 1 with 4 shards: the tail shards must come out empty
  // (lo == hi), never inverted — an inverted range underflowed the
  // elements_total accounting before the bounds were clamped.
  for (size_t s = 0; s < 4; ++s) {
    auto [lo, hi] = internal::SortByIdShardRange(1, 4, s);
    EXPECT_LE(lo, hi) << "shard " << s;
    EXPECT_LE(hi, 2u) << "shard " << s;
  }
}

TEST(ConcurrencyTest, ConstQueriesAreThreadCompatible) {
  // Hammer one selector from many threads; all runs must agree with the
  // single-threaded answer (the selector is never mutated after Build).
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(13));
  QueryResult expected = sel.SelectPrepared(q, 0.7, AlgorithmKind::kSf, {});
  ThreadPool pool(8);
  std::vector<QueryResult> results(64);
  ParallelFor(&pool, results.size(), [&](size_t i) {
    AlgorithmKind kind = (i % 2 == 0) ? AlgorithmKind::kSf
                                      : AlgorithmKind::kHybrid;
    results[i] = sel.SelectPrepared(q, 0.7, kind, {});
  });
  for (size_t i = 0; i < results.size(); ++i) {
    ExpectSameMatches(expected.matches, results[i].matches,
                      "thread result " + std::to_string(i));
  }
}

}  // namespace
}  // namespace simsel
