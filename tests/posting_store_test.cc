#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "storage/buffer_pool.h"
#include "storage/posting_store.h"
#include "test_util.h"

namespace simsel {
namespace {

using testing_util::ExpectSameMatches;
using testing_util::MakeSelector;

const SimilaritySelector& Selector() {
  static const SimilaritySelector* selector = new SimilaritySelector(
      MakeSelector(400, /*seed=*/901, /*with_sql=*/false));
  return *selector;
}

const PostingStore& Store() {
  static const PostingStore* store =
      new PostingStore(PostingStore::Build(Selector().index()));
  return *store;
}

TEST(PostingStoreTest, RoundtripsEveryList) {
  const InvertedIndex& index = Selector().index();
  const PostingStore& store = Store();
  ASSERT_EQ(store.num_tokens(), index.num_tokens());
  EXPECT_EQ(store.total_postings(), index.total_postings());
  std::vector<uint32_t> ids(4096);
  std::vector<float> lens(4096);
  for (TokenId t = 0; t < index.num_tokens(); ++t) {
    size_t n = index.ListSize(t);
    ASSERT_EQ(store.ListSize(t), n);
    size_t got = store.ReadBlock(t, 0, ids.size(), ids.data(), lens.data());
    ASSERT_EQ(got, std::min(n, ids.size()));
    for (size_t i = 0; i < got; ++i) {
      ASSERT_EQ(ids[i], index.LenIds(t)[i]);
      ASSERT_EQ(lens[i], index.LenLens(t)[i]);
    }
  }
}

TEST(PostingStoreTest, PartialBlockReads) {
  const InvertedIndex& index = Selector().index();
  const PostingStore& store = Store();
  // Find a list with >= 10 postings and read it in odd-sized chunks.
  for (TokenId t = 0; t < index.num_tokens(); ++t) {
    size_t n = index.ListSize(t);
    if (n < 10) continue;
    std::vector<uint32_t> ids(3);
    std::vector<float> lens(3);
    for (size_t first = 0; first < n; first += 3) {
      size_t got = store.ReadBlock(t, first, 3, ids.data(), lens.data());
      ASSERT_EQ(got, std::min<size_t>(3, n - first));
      for (size_t i = 0; i < got; ++i) {
        ASSERT_EQ(ids[i], index.LenIds(t)[first + i]);
      }
    }
    // Past-the-end read returns 0.
    EXPECT_EQ(store.ReadBlock(t, n, 3, ids.data(), lens.data()), 0u);
    break;
  }
}

TEST(PostingStoreTest, SaveLoadRoundtrip) {
  const PostingStore& store = Store();
  auto path =
      (std::filesystem::temp_directory_path() / "simsel_store.bin").string();
  ASSERT_TRUE(store.Save(path).ok());
  Result<PostingStore> loaded = PostingStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_tokens(), store.num_tokens());
  EXPECT_EQ(loaded->total_postings(), store.total_postings());
  std::vector<uint32_t> a(64), b(64);
  std::vector<float> al(64), bl(64);
  for (TokenId t = 0; t < store.num_tokens(); t += 7) {
    size_t ga = store.ReadBlock(t, 0, 64, a.data(), al.data());
    size_t gb = loaded->ReadBlock(t, 0, 64, b.data(), bl.data());
    ASSERT_EQ(ga, gb);
    for (size_t i = 0; i < ga; ++i) {
      ASSERT_EQ(a[i], b[i]);
      ASSERT_EQ(al[i], bl[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(PostingStoreTest, LoadRejectsCorruption) {
  const PostingStore& store = Store();
  auto path =
      (std::filesystem::temp_directory_path() / "simsel_store2.bin").string();
  ASSERT_TRUE(store.Save(path).ok());
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) / 2);
  Result<PostingStore> loaded = PostingStore::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

// --- Disk-mode queries. ---

class DiskModeParam : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(DiskModeParam, SameAnswersAsMemoryMode) {
  const SimilaritySelector& sel = Selector();
  SelectOptions disk;
  disk.posting_store = &Store();
  for (double tau : {0.5, 0.8, 0.95}) {
    for (SetId s = 0; s < 12; ++s) {
      PreparedQuery q = sel.Prepare(sel.collection().text(s * 17));
      QueryResult mem = sel.SelectPrepared(q, tau, GetParam(), {});
      QueryResult dsk = sel.SelectPrepared(q, tau, GetParam(), disk);
      ExpectSameMatches(mem.matches, dsk.matches,
                        std::string(AlgorithmKindName(GetParam())) + " tau=" +
                            std::to_string(tau));
      // Disk mode must not change the element accounting either.
      EXPECT_EQ(mem.counters.elements_read, dsk.counters.elements_read);
      EXPECT_EQ(mem.counters.elements_skipped, dsk.counters.elements_skipped);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, DiskModeParam,
    ::testing::Values(AlgorithmKind::kTa, AlgorithmKind::kNra,
                      AlgorithmKind::kIta, AlgorithmKind::kInra,
                      AlgorithmKind::kSf, AlgorithmKind::kHybrid,
                      AlgorithmKind::kPrefixFilter),
    [](const auto& info) {
      std::string name = AlgorithmKindName(info.param);
      return name;
    });

TEST(DiskModeTest, StoreCountsPhysicalPages) {
  const SimilaritySelector& sel = Selector();
  Store().ResetCounters();
  SelectOptions disk;
  disk.posting_store = &Store();
  // Physical-page accounting of the kernels: the sketch tier reads no
  // posting pages at all, so it is pinned off here.
  disk.prefilter = false;
  PreparedQuery q = sel.Prepare(sel.collection().text(3));
  sel.SelectPrepared(q, 0.8, AlgorithmKind::kSf, disk);
  EXPECT_GT(Store().sequential_page_reads() + Store().random_page_reads(),
            0u);
}

TEST(DiskModeTest, WorksTogetherWithBufferPool) {
  const SimilaritySelector& sel = Selector();
  BufferPool pool(100000);
  SelectOptions disk;
  disk.posting_store = &Store();
  disk.buffer_pool = &pool;
  disk.prefilter = false;  // pool accounting flows through the kernels
  PreparedQuery q = sel.Prepare(sel.collection().text(9));
  QueryResult first = sel.SelectPrepared(q, 0.8, AlgorithmKind::kSf, disk);
  QueryResult second = sel.SelectPrepared(q, 0.8, AlgorithmKind::kSf, disk);
  EXPECT_GT(first.counters.pool_misses, 0u);
  EXPECT_EQ(second.counters.pool_misses, 0u);
}

}  // namespace
}  // namespace simsel
