#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "common/thread_pool.h"
#include "core/dynamic.h"
#include "serve/dynamic_serving.h"
#include "test_util.h"

// Dynamic-index concurrency soak: concurrent readers x a writer x an online
// Rebuild against ONE shared DynamicSelector, in memory and disk mode. Every
// concurrent result must be byte-identical to a serial ground truth for the
// collection version it was executed at (QueryResult::snapshot_version names
// that version, so the expected answer is a table lookup). This binary
// carries the `concurrency` ctest label: scripts/check.sh always reruns it
// under ThreadSanitizer, so any data race on the append/publish/swap path
// fails the gate.

namespace simsel {
namespace {

std::vector<std::string> BaseRecords() {
  return testing_util::MakeWordRecords(200, /*seed=*/811);
}

std::string DiffMatches(const std::vector<Match>& expected,
                        const std::vector<Match>& actual) {
  if (expected.size() != actual.size()) {
    return "count " + std::to_string(expected.size()) + " vs " +
           std::to_string(actual.size());
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    // Byte-identical: same id and the exact same score double.
    if (expected[i].id != actual[i].id ||
        std::memcmp(&expected[i].score, &actual[i].score, sizeof(double)) !=
            0) {
      return "rank " + std::to_string(i) + " differs";
    }
  }
  return "";
}

// --- EpochManager unit tests -------------------------------------------

TEST(EpochManagerTest, LiveGuardBlocksReclaim) {
  EpochManager mgr;
  bool freed = false;
  auto guard = std::make_unique<EpochManager::Guard>(mgr);
  mgr.Retire([&freed] { freed = true; });
  // The guard pinned an epoch at or before the retire stamp: not freeable.
  EXPECT_EQ(mgr.Reclaim(), 0u);
  EXPECT_FALSE(freed);
  EXPECT_EQ(mgr.retired_count(), 1u);
  guard.reset();
  EXPECT_EQ(mgr.Reclaim(), 1u);
  EXPECT_TRUE(freed);
  EXPECT_EQ(mgr.retired_count(), 0u);
}

TEST(EpochManagerTest, GuardsTakenAfterRetireDoNotBlockIt) {
  EpochManager mgr;
  bool freed = false;
  {
    // With no readers at all, Retire's opportunistic reclaim frees
    // immediately.
    mgr.Retire([&freed] { freed = true; });
    EXPECT_TRUE(freed);
  }
  freed = false;
  auto old_guard = std::make_unique<EpochManager::Guard>(mgr);
  mgr.Retire([&freed] { freed = true; });  // held back by old_guard
  EXPECT_FALSE(freed);
  // A guard taken *after* the retire pins the advanced epoch: it cannot
  // hold a pointer to the retired object, so once the pre-retire guard
  // exits, reclamation proceeds even though this one is still live.
  EpochManager::Guard new_guard(mgr);
  EXPECT_EQ(mgr.Reclaim(), 0u);
  old_guard.reset();
  EXPECT_EQ(mgr.Reclaim(), 1u);
  EXPECT_TRUE(freed);
}

TEST(EpochManagerTest, DestructorDrainsRetiredList) {
  int freed = 0;
  {
    EpochManager mgr;
    EpochManager::Guard guard(mgr);
    mgr.Retire([&freed] { ++freed; });
    mgr.Retire([&freed] { ++freed; });
    // Guard still live: nothing freed yet.
    EXPECT_EQ(freed, 0);
  }
  EXPECT_EQ(freed, 2);
}

TEST(EpochManagerTest, GuardChurnNeverFreesUnderAReader) {
  // Readers repeatedly pin the manager and check a token object was not
  // freed under them while a writer retires a fresh object per round.
  EpochManager mgr;
  std::atomic<bool> stop{false};
  // The currently published object; readers dereference it under a guard.
  struct Box {
    std::atomic<uint64_t> canary{0xfeedfaceull};
  };
  std::atomic<Box*> current{new Box};
  std::atomic<uint64_t> bad_reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochManager::Guard guard(mgr);
        Box* box = current.load(std::memory_order_seq_cst);
        if (box->canary.load(std::memory_order_relaxed) != 0xfeedfaceull) {
          bad_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int round = 0; round < 400; ++round) {
    Box* fresh = new Box;
    Box* old = current.exchange(fresh, std::memory_order_seq_cst);
    mgr.Retire([old] {
      old->canary.store(0, std::memory_order_relaxed);  // poison, then free
      delete old;
    });
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(bad_reads.load(), 0u);
  delete current.load();
}

TEST(EpochManagerTest, MoreThanKSlotsGuardsGrowIntoOverflow) {
  // Guard acquisition must complete in bounded time even when every fixed
  // slot is taken: guard kSlots+1.. land in the overflow list instead of
  // spinning for a release that may never come.
  EpochManager mgr;
  constexpr size_t kExtra = 40;
  std::vector<std::unique_ptr<EpochManager::Guard>> guards;
  guards.reserve(EpochManager::kSlots + kExtra);
  for (size_t i = 0; i < EpochManager::kSlots + kExtra; ++i) {
    // Must not block or crash past kSlots.
    guards.push_back(std::make_unique<EpochManager::Guard>(mgr));
  }
  EXPECT_GE(mgr.overflow_capacity(), kExtra);
  bool freed = false;
  mgr.Retire([&freed] { freed = true; });
  // Overflow pins hold reclamation back exactly like slot pins...
  EXPECT_EQ(mgr.Reclaim(), 0u);
  EXPECT_FALSE(freed);
  // ...including when only overflow pins remain live.
  guards.erase(guards.begin(), guards.begin() + EpochManager::kSlots);
  EXPECT_EQ(mgr.Reclaim(), 0u);
  EXPECT_FALSE(freed);
  guards.clear();
  EXPECT_EQ(mgr.Reclaim(), 1u);
  EXPECT_TRUE(freed);
}

TEST(EpochManagerTest, OverflowNodesAreRecycledAcrossWaves) {
  EpochManager mgr;
  constexpr size_t kWaveExtra = 16;
  for (int wave = 0; wave < 5; ++wave) {
    std::vector<std::unique_ptr<EpochManager::Guard>> guards;
    for (size_t i = 0; i < EpochManager::kSlots + kWaveExtra; ++i) {
      guards.push_back(std::make_unique<EpochManager::Guard>(mgr));
    }
    bool freed = false;
    mgr.Retire([&freed] { freed = true; });
    EXPECT_FALSE(freed);
    guards.clear();
    EXPECT_EQ(mgr.Reclaim(), 1u);
    EXPECT_TRUE(freed);
  }
  // Released overflow nodes are reclaimed by later waves, not re-grown: the
  // list's high-water mark stays at one wave's overflow, bounding memory
  // even under repeated fan-out bursts.
  EXPECT_EQ(mgr.overflow_capacity(), kWaveExtra);
}

TEST(EpochManagerTest, ConcurrentOverflowChurnStaysSafe) {
  // Hammer the overflow path from several threads while a writer retires:
  // each thread holds enough guards to overflow the fixed array on its own,
  // the retired objects' canaries must never be poisoned under a reader.
  EpochManager mgr;
  struct Box {
    std::atomic<uint64_t> canary{0xfeedfaceull};
  };
  std::atomic<Box*> current{new Box};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<std::unique_ptr<EpochManager::Guard>> guards;
        for (size_t i = 0; i < EpochManager::kSlots / 2 + 8; ++i) {
          guards.push_back(std::make_unique<EpochManager::Guard>(mgr));
        }
        Box* box = current.load(std::memory_order_seq_cst);
        if (box->canary.load(std::memory_order_relaxed) != 0xfeedfaceull) {
          bad_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    Box* fresh = new Box;
    Box* old = current.exchange(fresh, std::memory_order_seq_cst);
    mgr.Retire([old] {
      old->canary.store(0, std::memory_order_relaxed);
      delete old;
    });
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(bad_reads.load(), 0u);
  delete current.load();
}

// --- Serial ground truth keyed by selector version ----------------------
//
// The writer inserts a fixed script of records. A reference selector
// replays the script serially, capturing the expected answer of each probe
// query at every version v = 0..N (v inserts applied). A concurrent
// reader's result then has exactly one correct answer: the one at its
// snapshot_version.

struct VersionedTruth {
  std::vector<std::string> queries;
  // expected[v][qi] = matches of queries[qi] at version v.
  std::vector<std::vector<std::vector<Match>>> expected;
};

VersionedTruth BuildTruth(const std::vector<std::string>& base,
                          const std::vector<std::string>& script,
                          const DynamicSelector::Options& options,
                          double tau) {
  VersionedTruth truth;
  for (size_t i = 0; i < 8; ++i) truth.queries.push_back(base[i * 9]);
  truth.queries.push_back(script.front());
  truth.queries.push_back(script.back());
  DynamicSelector ref(base, options);
  truth.expected.resize(script.size() + 1);
  for (size_t v = 0; v <= script.size(); ++v) {
    for (const std::string& q : truth.queries) {
      truth.expected[v].push_back(ref.Select(q, tau).matches);
    }
    if (v < script.size()) ref.AddRecord(script[v]);
  }
  return truth;
}

class DynamicSoakParam : public ::testing::TestWithParam<bool> {};

TEST_P(DynamicSoakParam, ConcurrentReadersAndWriterMatchSerial) {
  DynamicSelector::Options options;
  options.disk_mode = GetParam();
  const double tau = 0.7;
  const std::vector<std::string> base = BaseRecords();
  const std::vector<std::string> script =
      testing_util::MakeWordRecords(120, /*seed=*/823);
  const VersionedTruth truth = BuildTruth(base, script, options, tau);

  DynamicSelector dyn(base, options);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> checked{0};
  std::vector<std::string> failures(4);
  std::vector<std::thread> readers;
  for (size_t t = 0; t < failures.size(); ++t) {
    readers.emplace_back([&, t] {
      size_t qi = t;  // staggered start so threads probe different queries
      while (!done.load(std::memory_order_acquire) && failures[t].empty()) {
        qi = (qi + 1) % truth.queries.size();
        QueryResult r = dyn.Select(truth.queries[qi], tau);
        if (!r.status.ok() || !r.complete()) {
          failures[t] = "unexpected status/termination";
          break;
        }
        if (r.snapshot_version >= truth.expected.size()) {
          failures[t] = "version " + std::to_string(r.snapshot_version) +
                        " out of range";
          break;
        }
        std::string diff =
            DiffMatches(truth.expected[r.snapshot_version][qi], r.matches);
        if (!diff.empty()) {
          failures[t] = "q" + std::to_string(qi) + " at v" +
                        std::to_string(r.snapshot_version) + ": " + diff;
          break;
        }
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (const std::string& rec : script) dyn.AddRecord(rec);
  // Keep the readers probing the fully-written collection a moment.
  while (checked.load(std::memory_order_relaxed) < 400) {
    std::this_thread::yield();
    if (done.load(std::memory_order_acquire)) break;
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
  EXPECT_EQ(dyn.version(), script.size());
  EXPECT_EQ(dyn.size(), base.size() + script.size());
}

TEST_P(DynamicSoakParam, QueriesInFlightAcrossRebuildMatchPreOrPost) {
  // Acceptance criterion: a query in flight across the Rebuild swap is
  // byte-identical to EITHER the pre- or the post-rebuild serial answer —
  // never a hybrid — and its snapshot_version says which.
  DynamicSelector::Options options;
  options.disk_mode = GetParam();
  const double tau = 0.7;
  const std::vector<std::string> base = BaseRecords();
  const std::vector<std::string> extra =
      testing_util::MakeWordRecords(40, /*seed=*/829);

  // Reference: same inserts, then a rebuild. Pre = version 40 (frozen
  // stats), post = version 41 (folded + refreshed stats).
  std::vector<std::string> queries;
  for (size_t i = 0; i < 6; ++i) queries.push_back(base[i * 11]);
  queries.push_back(extra[0]);
  DynamicSelector ref(base, options);
  for (const std::string& rec : extra) ref.AddRecord(rec);
  std::vector<std::vector<Match>> pre, post;
  for (const std::string& q : queries) {
    pre.push_back(ref.Select(q, tau).matches);
  }
  ref.Rebuild();
  for (const std::string& q : queries) {
    post.push_back(ref.Select(q, tau).matches);
  }
  const uint64_t pre_version = extra.size();

  DynamicSelector dyn(base, options);
  for (const std::string& rec : extra) dyn.AddRecord(rec);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> post_seen{0};
  std::vector<std::string> failures(4);
  std::vector<std::thread> readers;
  for (size_t t = 0; t < failures.size(); ++t) {
    readers.emplace_back([&, t] {
      size_t qi = t;
      while (failures[t].empty()) {
        bool last = done.load(std::memory_order_acquire);
        qi = (qi + 1) % queries.size();
        QueryResult r = dyn.Select(queries[qi], tau);
        std::string diff;
        if (r.snapshot_version == pre_version) {
          diff = DiffMatches(pre[qi], r.matches);
        } else if (r.snapshot_version == pre_version + 1) {
          diff = DiffMatches(post[qi], r.matches);
          post_seen.fetch_add(1, std::memory_order_relaxed);
        } else {
          diff = "version " + std::to_string(r.snapshot_version);
        }
        if (!diff.empty()) {
          failures[t] = "q" + std::to_string(qi) + ": " + diff;
        }
        if (last) break;
      }
    });
  }
  dyn.Rebuild();
  // Let every reader observe the post-rebuild world at least once.
  while (post_seen.load(std::memory_order_relaxed) < failures.size()) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
  EXPECT_EQ(dyn.version(), pre_version + 1);
  EXPECT_EQ(dyn.delta_size(), 0u);
}

TEST_P(DynamicSoakParam, FullChaosAddSelectRebuildThenExactConvergence) {
  // Writer, four readers and repeated ONLINE rebuilds all racing on one
  // selector. Mid-flight results are checked for the structural invariants
  // that hold at every version (sound ids, sorted order, monotone version);
  // after quiescing and a final fold, results must be byte-identical to a
  // fresh serial build over the full record set.
  DynamicSelector::Options options;
  options.disk_mode = GetParam();
  const double tau = 0.7;
  const std::vector<std::string> base = BaseRecords();
  const std::vector<std::string> script =
      testing_util::MakeWordRecords(90, /*seed=*/839);

  DynamicSelector dyn(base, options);
  ThreadPool rebuild_pool(2);
  std::atomic<bool> done{false};
  std::vector<std::string> failures(4);
  std::vector<std::thread> readers;
  for (size_t t = 0; t < failures.size(); ++t) {
    readers.emplace_back([&, t] {
      uint64_t last_version = 0;
      size_t qi = t;
      while (!done.load(std::memory_order_acquire) && failures[t].empty()) {
        qi = (qi + 7) % base.size();
        QueryResult r = dyn.Select(base[qi], tau);
        if (!r.status.ok() || !r.complete()) {
          failures[t] = "bad status/termination";
          break;
        }
        if (r.snapshot_version < last_version) {
          failures[t] = "version went backwards";
          break;
        }
        last_version = r.snapshot_version;
        for (size_t i = 0; i < r.matches.size(); ++i) {
          if (i > 0 && r.matches[i - 1].id >= r.matches[i].id) {
            failures[t] = "unsorted matches";
          }
          if (r.matches[i].score + 1e-9 < tau) {
            failures[t] = "match below tau";
          }
        }
      }
    });
  }
  for (size_t i = 0; i < script.size(); ++i) {
    dyn.AddRecord(script[i]);
    if (i % 20 == 19) dyn.StartRebuild(&rebuild_pool);
  }
  dyn.WaitForRebuild();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }

  // Quiesced: fold everything, then compare against a fresh serial build.
  dyn.Rebuild();
  std::vector<std::string> all = base;
  all.insert(all.end(), script.begin(), script.end());
  EXPECT_EQ(dyn.size(), all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(dyn.text(static_cast<SetId>(i)), all[i]) << "id " << i;
  }
  SimilaritySelector fresh = SimilaritySelector::Build(all);
  for (size_t i = 0; i < 12; ++i) {
    const std::string& q = all[i * 17 % all.size()];
    QueryResult a = fresh.Select(q, tau);
    QueryResult b = dyn.Select(q, tau);
    EXPECT_EQ(DiffMatches(a.matches, b.matches), "") << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, DynamicSoakParam, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "DiskMode" : "MemoryMode";
                         });

// --- Serving layer: version-driven cache invalidation --------------------

TEST(DynamicServingTest, CacheInvalidatedByVersionBump) {
  serve::DynamicServingOptions options;
  options.cache_bytes = 1 << 20;
  const std::vector<std::string> base = BaseRecords();
  serve::DynamicServing serving(base, options);
  ASSERT_NE(serving.result_cache(), nullptr);
  const std::string query = base[3];

  QueryResult first = serving.Select(query, 0.8);
  QueryResult second = serving.Select(query, 0.8);
  EXPECT_EQ(DiffMatches(first.matches, second.matches), "");
  EXPECT_EQ(serving.result_cache()->hits(), 1u);

  // One insert bumps the version: the cached entry is stale, the rerun
  // sees the new record.
  SetId id = serving.AddRecord(query);
  QueryResult third = serving.Select(query, 0.8);
  EXPECT_EQ(serving.result_cache()->hits(), 1u);  // miss, not a stale hit
  EXPECT_EQ(third.snapshot_version, first.snapshot_version + 1);
  bool found = false;
  for (const Match& m : third.matches) found |= (m.id == id);
  EXPECT_TRUE(found);

  // The fresh answer was cached at the new version.
  QueryResult fourth = serving.Select(query, 0.8);
  EXPECT_EQ(serving.result_cache()->hits(), 2u);
  EXPECT_EQ(DiffMatches(third.matches, fourth.matches), "");
}

TEST(DynamicServingTest, ConcurrentCachedReadsNeverServeStaleResults) {
  serve::DynamicServingOptions options;
  options.cache_bytes = 1 << 20;
  const double tau = 0.7;
  const std::vector<std::string> base = BaseRecords();
  const std::vector<std::string> script =
      testing_util::MakeWordRecords(60, /*seed=*/853);
  const VersionedTruth truth =
      BuildTruth(base, script, options.selector, tau);

  serve::DynamicServing serving(base, options);
  std::atomic<bool> done{false};
  std::vector<std::string> failures(4);
  std::vector<std::thread> readers;
  for (size_t t = 0; t < failures.size(); ++t) {
    readers.emplace_back([&, t] {
      size_t qi = t;
      // `first` guarantees at least one Select per reader even if the
      // writer finishes the whole script before this thread is scheduled
      // (single-core hosts) — otherwise the hits+misses assertion below
      // can observe an untouched cache.
      bool first = true;
      while ((first || !done.load(std::memory_order_acquire)) &&
             failures[t].empty()) {
        first = false;
        qi = (qi + 1) % truth.queries.size();
        QueryResult r = serving.Select(truth.queries[qi], tau);
        if (r.snapshot_version >= truth.expected.size()) {
          failures[t] = "version out of range";
          break;
        }
        // Cache hit or miss, the answer must be the serial answer for the
        // version stamped on it — a stale hit would diff here.
        std::string diff =
            DiffMatches(truth.expected[r.snapshot_version][qi], r.matches);
        if (!diff.empty()) {
          failures[t] = "q" + std::to_string(qi) + " at v" +
                        std::to_string(r.snapshot_version) + ": " + diff;
        }
      }
    });
  }
  for (const std::string& rec : script) serving.AddRecord(rec);
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
  EXPECT_GT(serving.result_cache()->hits() + serving.result_cache()->misses(),
            0u);
}

TEST(DynamicServingTest, ThresholdPolicyRebuildsInBackground) {
  ThreadPool pool(2);
  serve::DynamicServingOptions options;
  options.rebuild_threshold = 16;
  options.pool = &pool;
  const std::vector<std::string> base = BaseRecords();
  serve::DynamicServing serving(base, options);
  for (int i = 0; i < 64; ++i) {
    serving.AddRecord(base[i % base.size()]);
    QueryResult r = serving.Select(base[i % 7], 0.8);
    ASSERT_TRUE(r.status.ok());
  }
  serving.selector().WaitForRebuild();
  // At least one threshold crossing folded the delta.
  EXPECT_LT(serving.selector().delta_size(), 64u);
  EXPECT_EQ(serving.selector().size(), base.size() + 64);
}

}  // namespace
}  // namespace simsel
