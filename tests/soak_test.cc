#include <gtest/gtest.h>

#include <cstdlib>

#include "storage/codec.h"
#include "test_util.h"

namespace simsel {
namespace {

// Randomized cross-algorithm soak. By default it runs a quick configuration
// suitable for CI; set SIMSEL_SOAK=1 for the long version (larger corpora,
// more seeds, more thresholds) when hunting for rare disagreements.

struct SoakConfig {
  size_t num_seeds;
  size_t records;
  size_t queries;
};

SoakConfig Config() {
  const char* env = std::getenv("SIMSEL_SOAK");
  if (env != nullptr && env[0] == '1') {
    return SoakConfig{8, 2000, 40};
  }
  return SoakConfig{2, 250, 8};
}

TEST(SoakTest, AllAlgorithmsAgreeAcrossRandomWorlds) {
  const SoakConfig config = Config();
  const AlgorithmKind kinds[] = {
      AlgorithmKind::kSql,    AlgorithmKind::kSortById, AlgorithmKind::kTa,
      AlgorithmKind::kNra,    AlgorithmKind::kIta,      AlgorithmKind::kInra,
      AlgorithmKind::kSf,     AlgorithmKind::kHybrid,
      AlgorithmKind::kPrefixFilter};
  for (size_t seed = 0; seed < config.num_seeds; ++seed) {
    SimilaritySelector sel =
        testing_util::MakeSelector(config.records, 5000 + seed * 17, true);
    std::vector<std::string> texts;
    for (SetId s = 0; s < sel.collection().size(); ++s) {
      texts.push_back(sel.collection().text(s));
    }
    std::vector<std::string> queries =
        testing_util::MakeQueries(texts, config.queries, 7000 + seed);
    for (const std::string& query : queries) {
      PreparedQuery q = sel.Prepare(query);
      // Derive a per-query threshold from the seed so the sweep covers the
      // whole range without a fixed grid.
      double tau = 0.35 + 0.6 * ((Fnv1a64(query.data(), query.size()) % 100) /
                                 100.0);
      QueryResult expected =
          sel.SelectPrepared(q, tau, AlgorithmKind::kLinearScan, {});
      for (AlgorithmKind kind : kinds) {
        QueryResult actual = sel.SelectPrepared(q, tau, kind, {});
        testing_util::ExpectSameMatches(
            expected.matches, actual.matches,
            std::string(AlgorithmKindName(kind)) + " seed=" +
                std::to_string(seed) + " tau=" + std::to_string(tau) +
                " q=" + query);
        if (::testing::Test::HasFailure()) return;  // stop at first world
      }
    }
  }
}

}  // namespace
}  // namespace simsel
