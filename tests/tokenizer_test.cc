#include <gtest/gtest.h>

#include "text/tokenizer.h"

namespace simsel {
namespace {

TokenizerOptions WordOpts() {
  TokenizerOptions o;
  o.kind = TokenizerKind::kWord;
  return o;
}

TEST(TokenizerTest, NormalizeLowercasesAndCollapsesSpace) {
  Tokenizer tok;
  EXPECT_EQ(tok.Normalize("  Main   St.,  Maine "), "main_st.,_maine");
}

TEST(TokenizerTest, NormalizeKeepsSpacesWhenConfigured) {
  TokenizerOptions o;
  o.collapse_space_to_underscore = false;
  Tokenizer tok(o);
  EXPECT_EQ(tok.Normalize("a  b"), "a b");
}

TEST(TokenizerTest, NormalizeCanPreserveCase) {
  TokenizerOptions o;
  o.lowercase = false;
  Tokenizer tok(o);
  EXPECT_EQ(tok.Normalize("MiXeD"), "MiXeD");
}

TEST(TokenizerTest, WordTokenization) {
  Tokenizer tok(WordOpts());
  std::vector<std::string> words = tok.Tokenize("Main St., Main");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "main");
  EXPECT_EQ(words[1], "st");
  EXPECT_EQ(words[2], "main");
}

TEST(TokenizerTest, WordTokenizationSkipsPunctuationRuns) {
  Tokenizer tok(WordOpts());
  std::vector<std::string> words = tok.Tokenize("...a--b!!");
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], "a");
  EXPECT_EQ(words[1], "b");
}

TEST(TokenizerTest, QGramsWithPadding) {
  TokenizerOptions o;
  o.q = 3;
  o.pad = true;
  o.pad_char = '#';
  Tokenizer tok(o);
  std::vector<std::string> grams = tok.Tokenize("ab");
  // "##ab##" -> ##a, #ab, ab#, b##  (L + q - 1 = 4 grams)
  ASSERT_EQ(grams.size(), 4u);
  EXPECT_EQ(grams[0], "##a");
  EXPECT_EQ(grams[1], "#ab");
  EXPECT_EQ(grams[2], "ab#");
  EXPECT_EQ(grams[3], "b##");
}

TEST(TokenizerTest, QGramsWithoutPadding) {
  TokenizerOptions o;
  o.q = 3;
  o.pad = false;
  Tokenizer tok(o);
  std::vector<std::string> grams = tok.Tokenize("abcd");
  ASSERT_EQ(grams.size(), 2u);
  EXPECT_EQ(grams[0], "abc");
  EXPECT_EQ(grams[1], "bcd");
}

TEST(TokenizerTest, ShortStringWithoutPaddingYieldsWholeString) {
  TokenizerOptions o;
  o.q = 4;
  o.pad = false;
  Tokenizer tok(o);
  std::vector<std::string> grams = tok.Tokenize("ab");
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "ab");
}

TEST(TokenizerTest, EmptyInputYieldsNoTokens) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  Tokenizer wtok(WordOpts());
  EXPECT_TRUE(wtok.Tokenize("  .,- ").empty());
}

TEST(TokenizerTest, GramCountMatchesFormula) {
  // With padding a word of length L yields L + q - 1 grams.
  TokenizerOptions o;
  o.q = 3;
  Tokenizer tok(o);
  EXPECT_EQ(tok.CountTokens("hello"), 5u + 3u - 1u);
  EXPECT_EQ(tok.CountTokens("a"), 1u + 3u - 1u);
}

TEST(TokenizerTest, TokenizeCountedAggregatesDuplicates) {
  Tokenizer tok(WordOpts());
  std::vector<TokenCount> counted = tok.TokenizeCounted("main st main main");
  ASSERT_EQ(counted.size(), 2u);
  // Sorted by token string.
  EXPECT_EQ(counted[0].token, "main");
  EXPECT_EQ(counted[0].count, 3u);
  EXPECT_EQ(counted[1].token, "st");
  EXPECT_EQ(counted[1].count, 1u);
}

TEST(TokenizerTest, QGramMultisetFromRepetitiveString) {
  TokenizerOptions o;
  o.q = 2;
  o.pad = false;
  Tokenizer tok(o);
  std::vector<TokenCount> counted = tok.TokenizeCounted("aaaa");
  ASSERT_EQ(counted.size(), 1u);
  EXPECT_EQ(counted[0].token, "aa");
  EXPECT_EQ(counted[0].count, 3u);
}

TEST(TokenizerTest, WholeStringQGramsUseUnderscore) {
  Tokenizer tok;  // q=3, padded, collapse spaces
  std::vector<std::string> grams = tok.Tokenize("Main St");
  bool found = false;
  for (const std::string& g : grams) {
    if (g == "n_s") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TokenizerTest, RejectsZeroQ) {
  TokenizerOptions o;
  o.q = 0;
  EXPECT_DEATH({ Tokenizer tok(o); }, "q-gram width");
}

}  // namespace
}  // namespace simsel
