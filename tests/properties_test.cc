#include <gtest/gtest.h>

#include <cmath>

#include "core/internal.h"
#include "test_util.h"

namespace simsel {
namespace {

using testing_util::MakeQueries;
using testing_util::MakeSelector;

const SimilaritySelector& Selector() {
  static const SimilaritySelector* selector =
      new SimilaritySelector(MakeSelector(500, /*seed=*/51));
  return *selector;
}

std::vector<std::string> CollectionQueries(size_t n, uint64_t seed) {
  std::vector<std::string> texts;
  for (SetId s = 0; s < Selector().collection().size(); ++s) {
    texts.push_back(Selector().collection().text(s));
  }
  return MakeQueries(texts, n, seed);
}

// --- Theorem 1: Length Boundedness. ---

TEST(LengthBoundednessTest, EveryMatchRespectsTheWindow) {
  const SimilaritySelector& sel = Selector();
  for (double tau : {0.5, 0.7, 0.9}) {
    for (const std::string& query : CollectionQueries(15, 61)) {
      PreparedQuery q = sel.Prepare(query);
      if (q.length == 0.0) continue;
      QueryResult r =
          sel.SelectPrepared(q, tau, AlgorithmKind::kLinearScan, {});
      for (const Match& m : r.matches) {
        double len = sel.measure().set_length(m.id);
        EXPECT_GE(len, tau * q.length * (1 - 1e-6))
            << "tau=" << tau << " id=" << m.id;
        EXPECT_LE(len, q.length / tau * (1 + 1e-6))
            << "tau=" << tau << " id=" << m.id;
      }
    }
  }
}

TEST(LengthBoundednessTest, BoundIsTightForContainment) {
  // Case q ∩ s = s (s ⊆ q): I = len(s)/len(q), so a set at exactly
  // τ·len(q) achieves τ. Verify the subset-score identity on real data.
  const SimilaritySelector& sel = Selector();
  const Collection& coll = sel.collection();
  const IdfMeasure& measure = sel.measure();
  size_t checked = 0;
  for (SetId s = 0; s < coll.size() && checked < 50; ++s) {
    PreparedQuery q = sel.Prepare(coll.text(s));
    // The set vs itself: I = len(s)²/(len(s)len(q)).
    double expect = static_cast<double>(measure.set_length(s)) /
                    q.length;
    if (std::abs(measure.Score(q, s) - std::min(1.0, expect)) < 1e-5) {
      ++checked;
    }
  }
  EXPECT_GE(checked, 50u);
}

TEST(LengthBoundednessTest, WindowDegeneratesAtTauOne) {
  using internal::ComputeLengthWindow;
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(0));
  auto w = ComputeLengthWindow(q, 1.0, true);
  // lo ≈ hi ≈ len(q): only equal-length sets survive.
  EXPECT_NEAR(w.lo, q.length, q.length * 1e-6);
  EXPECT_NEAR(w.hi, q.length, q.length * 1e-6);
  EXPECT_LE(w.lo, w.hi);
}

TEST(LengthBoundednessTest, DisabledWindowIsInfinite) {
  using internal::ComputeLengthWindow;
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(0));
  auto w = ComputeLengthWindow(q, 0.8, false);
  EXPECT_EQ(w.lo, 0.0f);
  EXPECT_TRUE(std::isinf(w.hi));
}

// --- Property 1: Order Preservation (via the list sort order). ---

TEST(OrderPreservationTest, ContributionsDecreaseAlongEveryList) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(42));
  for (size_t i = 0; i < q.tokens.size(); ++i) {
    const InvertedIndex& idx = sel.index();
    TokenId t = q.tokens[i];
    const float* lens = idx.LenLens(t);
    for (size_t j = 1; j < idx.ListSize(t); ++j) {
      double w_prev = sel.measure().Contribution(q, i, lens[j - 1]);
      double w_cur = sel.measure().Contribution(q, i, lens[j]);
      ASSERT_GE(w_prev, w_cur);
    }
  }
}

TEST(OrderPreservationTest, CrossListOrderAgrees) {
  // If w_k(s) <= w_k(r) on one list then the same holds on every list the
  // two sets share, because sort order is by the (constant) set length.
  const SimilaritySelector& sel = Selector();
  const IdfMeasure& m = sel.measure();
  PreparedQuery q = sel.Prepare(sel.collection().text(10));
  if (q.tokens.size() < 2) GTEST_SKIP();
  for (SetId a = 0; a < 50; ++a) {
    for (SetId b = a + 1; b < 50; ++b) {
      bool le0 = m.Contribution(q, 0, m.set_length(a)) <=
                 m.Contribution(q, 0, m.set_length(b));
      bool le1 = m.Contribution(q, 1, m.set_length(a)) <=
                 m.Contribution(q, 1, m.set_length(b));
      EXPECT_EQ(le0, le1);
    }
  }
}

// --- Equation 2: λ cutoffs decrease along the idf-sorted lists. ---

TEST(LambdaTest, CutoffsAreMonotonicallyDecreasing) {
  const SimilaritySelector& sel = Selector();
  for (const std::string& query : CollectionQueries(10, 71)) {
    PreparedQuery q = sel.Prepare(query);
    if (q.tokens.empty() || q.length == 0.0) continue;
    // Sort weights descending (SF's processing order).
    std::vector<double> w = q.weights;
    std::sort(w.begin(), w.end(), std::greater<>());
    double tau = 0.8;
    double suffix = 0;
    for (double x : w) suffix += x;
    double prev_lambda = 1e300;
    for (size_t k = 0; k < w.size(); ++k) {
      double lambda = suffix / (tau * q.length);
      EXPECT_LE(lambda, prev_lambda * (1 + 1e-12));
      prev_lambda = lambda;
      suffix -= w[k];
    }
  }
}

// --- Lemma-4 style access comparisons. ---

TEST(AccessComparisonTest, HybridNeverReadsMoreThanInra) {
  const SimilaritySelector& sel = Selector();
  for (double tau : {0.6, 0.8, 0.9}) {
    for (const std::string& query : CollectionQueries(20, 81)) {
      PreparedQuery q = sel.Prepare(query);
      QueryResult inra =
          sel.SelectPrepared(q, tau, AlgorithmKind::kInra, {});
      QueryResult hybrid =
          sel.SelectPrepared(q, tau, AlgorithmKind::kHybrid, {});
      EXPECT_LE(hybrid.counters.elements_read, inra.counters.elements_read)
          << "tau=" << tau << " q=" << query;
    }
  }
}

TEST(AccessComparisonTest, HybridStopRuleFiresOnSomeInstance) {
  // The max_len(C) + λ₁ stop only helps when λ₁ < len(q)/τ, i.e. when some
  // query tokens are unknown; modified queries provide that. The paper
  // expects Hybrid to win "only in very special cases" — assert the
  // machinery is alive (at least one strict win) and never harmful.
  const SimilaritySelector& sel = Selector();
  Rng rng(5);
  size_t strict_wins = 0;
  // Kernel elements_read comparison: the sketch tier answers some of these
  // instances without reading lists at all, so it is pinned off.
  SelectOptions kernels;
  kernels.prefilter = false;
  for (int i = 0; i < 60; ++i) {
    std::string base =
        sel.collection().text(static_cast<SetId>(rng.NextBounded(
            sel.collection().size())));
    PreparedQuery q = sel.Prepare(ApplyModifications(base, 2, &rng));
    if (q.unknown_tokens == 0) continue;
    uint64_t hybrid =
        sel.SelectPrepared(q, 0.6, AlgorithmKind::kHybrid, kernels)
            .counters.elements_read;
    uint64_t inra =
        sel.SelectPrepared(q, 0.6, AlgorithmKind::kInra, kernels)
            .counters.elements_read;
    ASSERT_LE(hybrid, inra);
    if (hybrid < inra) ++strict_wins;
  }
  EXPECT_GE(strict_wins, 1u);
}

TEST(AccessComparisonTest, ImprovedAlgorithmsReadNoMoreThanClassicNra) {
  const SimilaritySelector& sel = Selector();
  uint64_t nra_total = 0, inra_total = 0, sf_total = 0;
  const double tau = 0.8;
  for (const std::string& query : CollectionQueries(20, 91)) {
    PreparedQuery q = sel.Prepare(query);
    nra_total +=
        sel.SelectPrepared(q, tau, AlgorithmKind::kNra, {}).counters
            .elements_read;
    inra_total +=
        sel.SelectPrepared(q, tau, AlgorithmKind::kInra, {}).counters
            .elements_read;
    sf_total += sel.SelectPrepared(q, tau, AlgorithmKind::kSf, {}).counters
                    .elements_read;
  }
  EXPECT_LE(inra_total, nra_total);
  EXPECT_LE(sf_total, nra_total);
}

TEST(AccessComparisonTest, SortByIdReadsEverything) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(5));
  QueryResult r = sel.SelectPrepared(q, 0.9, AlgorithmKind::kSortById, {});
  EXPECT_EQ(r.counters.elements_read, r.counters.elements_total);
  EXPECT_DOUBLE_EQ(r.counters.PruningPower(), 0.0);
}

TEST(AccessComparisonTest, LengthBoundingImprovesPruning) {
  const SimilaritySelector& sel = Selector();
  const double tau = 0.85;
  uint64_t with_lb = 0, without_lb = 0;
  SelectOptions nlb;
  nlb.length_bounding = false;
  for (const std::string& query : CollectionQueries(20, 101)) {
    PreparedQuery q = sel.Prepare(query);
    with_lb += sel.SelectPrepared(q, tau, AlgorithmKind::kSf, {})
                   .counters.elements_read;
    without_lb += sel.SelectPrepared(q, tau, AlgorithmKind::kSf, nlb)
                      .counters.elements_read;
  }
  EXPECT_LE(with_lb, without_lb);
}

TEST(AccessComparisonTest, HighThresholdPrunesMore) {
  const SimilaritySelector& sel = Selector();
  uint64_t low = 0, high = 0;
  for (const std::string& query : CollectionQueries(20, 111)) {
    PreparedQuery q = sel.Prepare(query);
    low += sel.SelectPrepared(q, 0.5, AlgorithmKind::kSf, {})
               .counters.elements_read;
    high += sel.SelectPrepared(q, 0.95, AlgorithmKind::kSf, {})
                .counters.elements_read;
  }
  EXPECT_LE(high, low);
}

}  // namespace
}  // namespace simsel
