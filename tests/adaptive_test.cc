#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "core/internal.h"
#include "index/stats.h"
#include "test_util.h"

namespace simsel {
namespace {

const SimilaritySelector& Selector() {
  static const SimilaritySelector* selector = new SimilaritySelector(
      testing_util::MakeSelector(400, /*seed=*/401, false));
  return *selector;
}

TEST(AdaptiveTest, AlwaysExact) {
  const SimilaritySelector& sel = Selector();
  for (double tau : {0.1, 0.4, 0.8, 0.95}) {
    for (SetId s = 0; s < 10; ++s) {
      PreparedQuery q = sel.Prepare(sel.collection().text(s));
      QueryResult expected =
          sel.SelectPrepared(q, tau, AlgorithmKind::kLinearScan, {});
      QueryResult actual = AdaptiveSelect(sel, q, tau);
      testing_util::ExpectSameMatches(expected.matches, actual.matches,
                                      "tau=" + std::to_string(tau));
    }
  }
}

TEST(AdaptiveTest, HighThresholdPicksSf) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(0));
  PlanDecision d = ChooseAlgorithm(sel.index(), sel.measure(), q, 0.9);
  EXPECT_EQ(d.kind, AlgorithmKind::kSf);
  EXPECT_LT(d.window_postings, d.total_postings);
}

TEST(AdaptiveTest, TinyThresholdPrefersFlatMerge) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(0));
  // tau = 0.05: window [0.05·len, 20·len] covers essentially every posting.
  PlanDecision d = ChooseAlgorithm(sel.index(), sel.measure(), q, 0.05);
  EXPECT_EQ(d.kind, AlgorithmKind::kSortById);
}

TEST(AdaptiveTest, WindowEstimateIsPlausible) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(21));
  PlanDecision d = ChooseAlgorithm(sel.index(), sel.measure(), q, 0.8);
  // Compare the skip-index estimate with an exact count.
  internal::LengthWindow w = internal::ComputeLengthWindow(q, 0.8, true);
  uint64_t exact = 0, total = 0;
  for (TokenId t : q.tokens) {
    const float* lens = sel.index().LenLens(t);
    size_t n = sel.index().ListSize(t);
    total += n;
    for (size_t i = 0; i < n; ++i) exact += w.Contains(lens[i]);
  }
  EXPECT_EQ(d.total_postings, total);
  EXPECT_NEAR(static_cast<double>(d.window_postings),
              static_cast<double>(exact),
              std::max<double>(4.0, 0.05 * exact));
}

TEST(IndexStatsTest, AggregatesAreConsistent) {
  const SimilaritySelector& sel = Selector();
  IndexStats stats = ComputeIndexStats(sel.index());
  EXPECT_EQ(stats.num_tokens, sel.index().num_tokens());
  EXPECT_EQ(stats.total_postings, sel.index().total_postings());
  EXPECT_GE(stats.non_empty_lists, 1u);
  EXPECT_LE(stats.min_list, stats.p50_list);
  EXPECT_LE(stats.p50_list, stats.p90_list);
  EXPECT_LE(stats.p90_list, stats.p99_list);
  EXPECT_LE(stats.p99_list, stats.max_list);
  EXPECT_GT(stats.avg_list, 0.0);
  EXPECT_LE(stats.min_set_length, stats.max_set_length);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(IndexStatsTest, EmptyIndex) {
  Tokenizer tok;
  Collection empty = Collection::Build({}, tok);
  IdfMeasure measure(empty);
  InvertedIndex index = InvertedIndex::Build(empty, measure);
  IndexStats stats = ComputeIndexStats(index);
  EXPECT_EQ(stats.total_postings, 0u);
  EXPECT_EQ(stats.non_empty_lists, 0u);
  EXPECT_EQ(stats.min_list, 0u);
}

}  // namespace
}  // namespace simsel
