#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "storage/posting_store.h"
#include "test_util.h"

// Boundary queries: the threshold and input edge cases every algorithm must
// agree on — τ = 1.0 exact match, a τ that equals a match's score exactly,
// the empty query, an all-out-of-vocabulary query, a single-token query —
// plus the τ-clamping contract (τ ≤ 0 / NaN / > 1 handled identically by
// every public Select entry). Linear scan is the ground truth throughout.

namespace simsel {
namespace {

using testing_util::ExpectSameMatches;
using testing_util::MakeSelector;

const SimilaritySelector& Selector() {
  static const SimilaritySelector* selector = new SimilaritySelector(
      MakeSelector(400, /*seed=*/131, /*with_sql=*/true));
  return *selector;
}

const PostingStore& Store() {
  static const PostingStore* store =
      new PostingStore(PostingStore::Build(Selector().index()));
  return *store;
}

const AlgorithmKind kAllKinds[] = {
    AlgorithmKind::kLinearScan, AlgorithmKind::kSql,
    AlgorithmKind::kSortById,   AlgorithmKind::kTa,
    AlgorithmKind::kNra,        AlgorithmKind::kIta,
    AlgorithmKind::kInra,       AlgorithmKind::kSf,
    AlgorithmKind::kHybrid,     AlgorithmKind::kPrefixFilter};

class BoundaryModeParam : public ::testing::TestWithParam<bool> {
 protected:
  SelectOptions Options() const {
    SelectOptions o;
    if (GetParam()) o.posting_store = &Store();
    return o;
  }
  std::string Context(AlgorithmKind kind) const {
    return std::string(AlgorithmKindName(kind)) +
           (GetParam() ? " disk" : " mem");
  }
};

TEST_P(BoundaryModeParam, TauOneIsExactMatch) {
  // τ = 1.0: only sets token-identical to the query can qualify. The
  // canonical score normalizes by a float set length, so a self-score may
  // round to just below 1.0 — pick a record whose self-score computes to
  // exactly 1.0 so the truth set is non-trivial, then demand every
  // algorithm reproduce it bit-for-bit.
  const SimilaritySelector& sel = Selector();
  SetId qid = 0;
  bool found_exact = false;
  for (SetId s = 0; s < sel.collection().size() && !found_exact; ++s) {
    PreparedQuery q = sel.Prepare(sel.collection().text(s));
    if (sel.measure().Score(q, s) >= 1.0) {
      qid = s;
      found_exact = true;
    }
  }
  ASSERT_TRUE(found_exact)
      << "fixture needs a record whose self-score reaches 1.0";
  const std::string query = sel.collection().text(qid);
  QueryResult truth =
      sel.Select(query, 1.0, AlgorithmKind::kLinearScan, Options());
  ASSERT_FALSE(truth.matches.empty());
  bool found_self = false;
  for (const Match& m : truth.matches) {
    EXPECT_GE(m.score, 1.0);
    found_self |= (m.id == qid);
  }
  EXPECT_TRUE(found_self);
  for (AlgorithmKind kind : kAllKinds) {
    QueryResult r = sel.Select(query, 1.0, kind, Options());
    EXPECT_TRUE(r.complete()) << Context(kind);
    ExpectSameMatches(truth.matches, r.matches, Context(kind) + " tau=1");
  }
}

TEST_P(BoundaryModeParam, ScoreExactlyAtTauIsReported) {
  // Run once at a loose threshold, then re-query with τ set to a reported
  // score double: that set sits exactly on the boundary and a strict `>`
  // anywhere in the pruning or reporting path would drop it.
  const SimilaritySelector& sel = Selector();
  std::string query;
  double tau = 0.0;
  SetId boundary_id = 0;
  bool found = false;
  for (SetId qid = 0; qid < 100 && !found; ++qid) {
    query = sel.collection().text(qid);
    QueryResult probe =
        sel.Select(query, 0.5, AlgorithmKind::kLinearScan, Options());
    for (const Match& m : probe.matches) {
      if (m.score < 1.0 && (!found || m.score < tau)) {
        tau = m.score;
        boundary_id = m.id;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found) << "fixture needs a non-exact match";
  QueryResult truth =
      sel.Select(query, tau, AlgorithmKind::kLinearScan, Options());
  for (AlgorithmKind kind : kAllKinds) {
    QueryResult r = sel.Select(query, tau, kind, Options());
    ExpectSameMatches(truth.matches, r.matches,
                      Context(kind) + " tau==score");
    bool reported = false;
    for (const Match& m : r.matches) reported |= (m.id == boundary_id);
    EXPECT_TRUE(reported)
        << Context(kind) << ": set " << boundary_id
        << " with score == tau was dropped";
  }
}

TEST_P(BoundaryModeParam, EmptyQueryYieldsEmptyResult) {
  const SimilaritySelector& sel = Selector();
  for (AlgorithmKind kind : kAllKinds) {
    QueryResult r = sel.Select("", 0.5, kind, Options());
    EXPECT_TRUE(r.complete()) << Context(kind);
    EXPECT_TRUE(r.matches.empty()) << Context(kind);
    EXPECT_EQ(r.counters.elements_read, 0u) << Context(kind);
  }
}

TEST_P(BoundaryModeParam, AllOovQueryYieldsEmptyResult) {
  // Digits never appear in the generated word corpus, so every gram is
  // out-of-vocabulary and dropped at Prepare time.
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare("0123456789");
  ASSERT_TRUE(q.tokens.empty()) << "fixture corpus unexpectedly has digits";
  for (AlgorithmKind kind : kAllKinds) {
    QueryResult r = sel.Select("0123456789", 0.5, kind, Options());
    EXPECT_TRUE(r.complete()) << Context(kind);
    EXPECT_TRUE(r.matches.empty()) << Context(kind);
  }
}

TEST_P(BoundaryModeParam, SingleTokenQueryAgreesEverywhere) {
  // A query of exactly one token: prefix/suffix splits degenerate, list
  // rounds have one list, every algorithm must still agree with the scan.
  // The padding tokenizer never emits a lone gram, so the query is built
  // directly at the PreparedQuery layer (the semantics are defined there:
  // Score only consults tokens/weights/length).
  const SimilaritySelector& sel = Selector();
  PreparedQuery full = sel.Prepare(sel.collection().text(3));
  ASSERT_FALSE(full.tokens.empty());
  PreparedQuery q;
  q.tokens = {full.tokens[0]};
  q.tfs = {full.tfs[0]};
  q.weights = {full.weights[0]};
  q.length = std::sqrt(full.weights[0]);
  q.multiset_size = 1;
  for (double tau : {0.2, 0.9}) {
    QueryResult truth =
        sel.SelectPrepared(q, tau, AlgorithmKind::kLinearScan, Options());
    for (AlgorithmKind kind : kAllKinds) {
      QueryResult r = sel.SelectPrepared(q, tau, kind, Options());
      EXPECT_TRUE(r.complete()) << Context(kind);
      ExpectSameMatches(truth.matches, r.matches,
                        Context(kind) + " single-token tau=" +
                            std::to_string(tau));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, BoundaryModeParam, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "DiskMode" : "MemoryMode";
                         });

TEST(TauClampTest, OutOfRangeTauIsClampedIdentically) {
  // τ ≤ 0 and non-finite values clamp to the same minimal threshold at
  // every public entry — no algorithm may crash, loop, or diverge from the
  // scan. (The old behavior leaned on scattered internal `tau > 0` guards
  // with per-algorithm outcomes.)
  const SimilaritySelector& sel = Selector();
  const std::string query = sel.collection().text(9);
  const double bad_taus[] = {0.0, -1.0, -1e30,
                             std::numeric_limits<double>::quiet_NaN(),
                             -std::numeric_limits<double>::infinity()};
  for (double tau : bad_taus) {
    QueryResult truth =
        sel.Select(query, tau, AlgorithmKind::kLinearScan, {});
    // The clamped threshold is positive: only sets with actual overlap.
    for (const Match& m : truth.matches) EXPECT_GT(m.score, 0.0);
    for (AlgorithmKind kind : kAllKinds) {
      QueryResult r = sel.Select(query, tau, kind, {});
      EXPECT_TRUE(r.complete()) << AlgorithmKindName(kind);
      ExpectSameMatches(truth.matches, r.matches,
                        std::string(AlgorithmKindName(kind)) + " tau=" +
                            std::to_string(tau));
    }
  }
}

TEST(TauClampTest, ImpossibleTauYieldsEmptyEverywhere) {
  // IDF similarity never exceeds 1: τ > 1 passes through the clamp (the
  // upper range is measure-dependent — BM25 runs above 1) and every
  // algorithm naturally reports nothing.
  const SimilaritySelector& sel = Selector();
  const std::string query = sel.collection().text(9);
  for (double tau : {1.5, 100.0}) {
    for (AlgorithmKind kind : kAllKinds) {
      QueryResult r = sel.Select(query, tau, kind, {});
      EXPECT_TRUE(r.complete()) << AlgorithmKindName(kind);
      EXPECT_TRUE(r.matches.empty())
          << AlgorithmKindName(kind) << " tau=" << tau;
    }
  }
}

}  // namespace
}  // namespace simsel
