#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.h"
#include "storage/posting_store.h"
#include "test_util.h"

// Bounded query execution: every algorithm honors QueryControl's deadline,
// element budget and cancellation token, and a tripped query returns a
// *sound partial* — every reported match appears in the complete answer
// with the exact same canonical score. This binary carries the
// `concurrency` label: the cancel-in-flight test races a canceller thread
// against queries on one shared selector and must stay TSAN-clean.

namespace simsel {
namespace {

// Multi-word records (unlike test_util's one-word corpus): a record-sized
// query then carries dozens of gram lists with thousands of postings, so
// every algorithm does enough work to reach even the sparsest poll cadence
// (1024 pops for the merge paths). One-word records would let length
// bounding prune everything for any longer probe query.
const SimilaritySelector& Selector() {
  static const SimilaritySelector* selector = [] {
    CorpusOptions corpus;
    corpus.num_records = 1500;
    corpus.vocab_size = 200;
    corpus.min_words = 6;
    corpus.max_words = 10;
    corpus.seed = 47;
    BuildOptions build;
    build.tokenizer.q = 3;
    build.build_sql_baseline = true;
    build.index.page_bytes = 512;
    build.index.skip_fanout = 8;
    build.index.hash_page_bytes = 256;
    build.btree_page_bytes = 512;
    return new SimilaritySelector(
        SimilaritySelector::Build(GenerateCorpus(corpus).records, build));
  }();
  return *selector;
}

const PostingStore& Store() {
  static const PostingStore* store =
      new PostingStore(PostingStore::Build(Selector().index()));
  return *store;
}

const AlgorithmKind kAllKinds[] = {
    AlgorithmKind::kLinearScan, AlgorithmKind::kSql,
    AlgorithmKind::kSortById,   AlgorithmKind::kTa,
    AlgorithmKind::kNra,        AlgorithmKind::kIta,
    AlgorithmKind::kInra,       AlgorithmKind::kSf,
    AlgorithmKind::kHybrid,     AlgorithmKind::kPrefixFilter};

// A record-sized probe query (its length sits inside every record's
// Theorem-1 window, so nothing is pruned wholesale).
std::string ProbeQuery(size_t i = 0) {
  return Selector().collection().text(static_cast<SetId>(i * 37 % 1500));
}

// A deliberately oversized query for the merge paths (which never
// length-bound): more lists, more pops, every id-range shard reaches its
// poll cadence.
std::string WideQuery(size_t records) {
  std::string text;
  for (size_t i = 0; i < records; ++i) {
    if (!text.empty()) text += ' ';
    text += ProbeQuery(i);
  }
  return text;
}

// Every partial match must appear in the complete answer with the identical
// score double (subset soundness), and the result's own bookkeeping must be
// consistent.
void ExpectSoundPartial(const QueryResult& full, const QueryResult& partial,
                        const std::string& context) {
  EXPECT_TRUE(partial.status.ok()) << context;
  EXPECT_EQ(partial.counters.results, partial.matches.size()) << context;
  size_t fi = 0;
  for (const Match& m : partial.matches) {
    while (fi < full.matches.size() && full.matches[fi].id < m.id) ++fi;
    ASSERT_LT(fi, full.matches.size())
        << context << ": partial reported id " << m.id
        << " absent from the complete answer";
    ASSERT_EQ(full.matches[fi].id, m.id)
        << context << ": partial reported id " << m.id
        << " absent from the complete answer";
    EXPECT_DOUBLE_EQ(full.matches[fi].score, m.score)
        << context << " id " << m.id;
  }
  // Matches stay in canonical ascending-id order even on the partial path.
  for (size_t i = 1; i < partial.matches.size(); ++i) {
    EXPECT_LT(partial.matches[i - 1].id, partial.matches[i].id) << context;
  }
}

class ControlModeParam : public ::testing::TestWithParam<bool> {
 protected:
  SelectOptions BaseOptions() const {
    SelectOptions o;
    if (GetParam()) o.posting_store = &Store();
    return o;
  }
  std::string ModeName() const { return GetParam() ? " disk" : " mem"; }
};

TEST_P(ControlModeParam, PreExpiredDeadlineTripsEveryAlgorithm) {
  const SimilaritySelector& sel = Selector();
  const std::string query = ProbeQuery();
  const double tau = 0.5;
  for (AlgorithmKind kind : kAllKinds) {
    std::string context = std::string(AlgorithmKindName(kind)) + ModeName();
    QueryResult full = sel.Select(query, tau, kind, BaseOptions());
    ASSERT_TRUE(full.complete()) << context;

    SelectOptions opts = BaseOptions();
    opts.control.deadline =
        QueryControl::Clock::now() - std::chrono::milliseconds(1);
    QueryResult r = sel.Select(query, tau, kind, opts);
    EXPECT_EQ(r.termination, Termination::kDeadline) << context;
    EXPECT_FALSE(r.complete()) << context;
    ExpectSoundPartial(full, r, context);
  }
}

TEST_P(ControlModeParam, PreSetCancelTripsEveryAlgorithm) {
  const SimilaritySelector& sel = Selector();
  const std::string query = ProbeQuery();
  const double tau = 0.5;
  std::atomic<bool> cancel{true};
  for (AlgorithmKind kind : kAllKinds) {
    std::string context = std::string(AlgorithmKindName(kind)) + ModeName();
    QueryResult full = sel.Select(query, tau, kind, BaseOptions());

    SelectOptions opts = BaseOptions();
    opts.control.cancel = &cancel;
    QueryResult r = sel.Select(query, tau, kind, opts);
    EXPECT_EQ(r.termination, Termination::kCancelled) << context;
    ExpectSoundPartial(full, r, context);
  }
}

TEST_P(ControlModeParam, TinyBudgetTripsEveryAlgorithm) {
  const SimilaritySelector& sel = Selector();
  const std::string query = ProbeQuery();
  const double tau = 0.5;
  for (AlgorithmKind kind : kAllKinds) {
    std::string context = std::string(AlgorithmKindName(kind)) + ModeName();
    QueryResult full = sel.Select(query, tau, kind, BaseOptions());

    SelectOptions opts = BaseOptions();
    opts.control.max_elements_read = 1;
    QueryResult r = sel.Select(query, tau, kind, opts);
    EXPECT_EQ(r.termination, Termination::kBudget) << context;
    // The budget is a trip wire: the first poll past it stops the query, so
    // the work done exceeds the budget but stayed far below the full run.
    EXPECT_GT(r.counters.elements_read + r.counters.rows_scanned, 1u)
        << context;
    ExpectSoundPartial(full, r, context);
  }
}

TEST_P(ControlModeParam, PartialStaysSoundAcrossBudgetLevels) {
  // Sweeping the budget slides the trip point through every phase of each
  // algorithm (first spans, candidate scans, verification); soundness must
  // hold wherever the cut lands.
  const SimilaritySelector& sel = Selector();
  const std::string query = ProbeQuery();
  const double tau = 0.6;
  for (AlgorithmKind kind : kAllKinds) {
    QueryResult full = sel.Select(query, tau, kind, BaseOptions());
    for (uint64_t budget : {1u, 64u, 512u, 4096u, 32768u}) {
      SelectOptions opts = BaseOptions();
      opts.control.max_elements_read = budget;
      QueryResult r = sel.Select(query, tau, kind, opts);
      std::string context = std::string(AlgorithmKindName(kind)) +
                            ModeName() + " budget " + std::to_string(budget);
      ExpectSoundPartial(full, r, context);
      if (r.termination == Termination::kCompleted) {
        // An untripped run must be the exact complete answer.
        EXPECT_EQ(r.matches.size(), full.matches.size()) << context;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ControlModeParam, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "DiskMode" : "MemoryMode";
                         });

TEST(QueryControlTest, InactiveControlNeverTrips) {
  const SimilaritySelector& sel = Selector();
  const std::string query = ProbeQuery();
  SelectOptions opts;  // default control: no limits
  for (AlgorithmKind kind : kAllKinds) {
    QueryResult r = sel.Select(query, 0.7, kind, opts);
    EXPECT_TRUE(r.complete()) << AlgorithmKindName(kind);
    EXPECT_EQ(r.termination, Termination::kCompleted)
        << AlgorithmKindName(kind);
  }
}

TEST(QueryControlTest, GenerousLimitsLeaveResultComplete) {
  // Limits set but never reached: the result must be byte-identical to the
  // unbounded run (the control path may not perturb the algorithms).
  const SimilaritySelector& sel = Selector();
  const std::string query = ProbeQuery();
  std::atomic<bool> cancel{false};
  for (AlgorithmKind kind : kAllKinds) {
    QueryResult full = sel.Select(query, 0.7, kind, {});
    SelectOptions opts;
    opts.control.deadline = QueryControl::DeadlineAfterMillis(60'000);
    opts.control.max_elements_read = 1'000'000'000;
    opts.control.cancel = &cancel;
    QueryResult r = sel.Select(query, 0.7, kind, opts);
    std::string context = AlgorithmKindName(kind);
    EXPECT_TRUE(r.complete()) << context;
    testing_util::ExpectSameMatches(full.matches, r.matches, context);
  }
}

TEST(QueryControlTest, BatchSelectHonorsSharedDeadline) {
  const SimilaritySelector& sel = Selector();
  std::vector<std::string> queries;
  for (SetId s = 0; s < 16; ++s) {
    queries.push_back(sel.collection().text(s * 3));
  }
  SelectOptions opts;
  opts.control.deadline =
      QueryControl::Clock::now() - std::chrono::milliseconds(1);
  ThreadPool pool(4);
  std::vector<QueryResult> batch =
      BatchSelect(sel, queries, 0.6, AlgorithmKind::kSf, opts, &pool);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].termination, Termination::kDeadline) << "query " << i;
    QueryResult full = sel.Select(queries[i], 0.6, AlgorithmKind::kSf, {});
    ExpectSoundPartial(full, batch[i], "batch query " + std::to_string(i));
  }
}

TEST(QueryControlTest, BatchSelectSharedCancelStopsTheBatch) {
  const SimilaritySelector& sel = Selector();
  std::vector<std::string> queries(24, ProbeQuery());
  std::atomic<bool> cancel{true};
  SelectOptions opts;
  opts.control.cancel = &cancel;
  ThreadPool pool(4);
  std::vector<QueryResult> batch =
      BatchSelect(sel, queries, 0.5, AlgorithmKind::kInra, opts, &pool);
  for (const QueryResult& r : batch) {
    EXPECT_EQ(r.termination, Termination::kCancelled);
  }
}

TEST(QueryControlTest, CancelInFlightOnSharedSelectorIsRaceFree) {
  // The TSAN gate: many threads serve long queries (memory and disk mode)
  // off ONE shared selector while another thread flips the shared cancel
  // token mid-flight. Every result must be either the complete answer or a
  // sound cancelled partial; no data race, no crash.
  const SimilaritySelector& sel = Selector();
  const std::string query = ProbeQuery(5);
  const double tau = 0.4;
  QueryResult full_mem = sel.Select(query, tau, AlgorithmKind::kSf, {});
  SelectOptions disk;
  disk.posting_store = &Store();
  QueryResult full_disk = sel.Select(query, tau, AlgorithmKind::kSf, disk);

  std::atomic<bool> cancel{false};
  const size_t kTasks = 16;
  std::vector<QueryResult> results(kTasks);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    cancel.store(true, std::memory_order_relaxed);
  });
  ThreadPool pool(8);
  ParallelFor(&pool, kTasks, [&](size_t i) {
    SelectOptions opts;
    if (i % 2 == 1) opts.posting_store = &Store();
    opts.control.cancel = &cancel;
    results[i] = sel.SelectPrepared(sel.Prepare(query), tau,
                                    AlgorithmKind::kSf, opts);
  });
  canceller.join();
  for (size_t i = 0; i < kTasks; ++i) {
    const QueryResult& full = (i % 2 == 1) ? full_disk : full_mem;
    std::string context = "task " + std::to_string(i);
    ASSERT_TRUE(results[i].termination == Termination::kCompleted ||
                results[i].termination == Termination::kCancelled)
        << context;
    if (results[i].termination == Termination::kCompleted) {
      testing_util::ExpectSameMatches(full.matches, results[i].matches,
                                      context);
    } else {
      ExpectSoundPartial(full, results[i], context);
    }
  }
}

TEST(QueryControlTest, ParallelIntraQueryPathsHonorControl) {
  const SimilaritySelector& sel = Selector();
  // Long enough that every id-range shard of the parallel merge reaches its
  // poll cadence (the budget/cancel check runs once per 1024 pops).
  PreparedQuery q = sel.Prepare(WideQuery(12));
  ThreadPool pool(4);
  std::atomic<bool> cancel{true};
  SelectOptions opts;
  opts.control.cancel = &cancel;

  QueryResult full_scan = ParallelLinearScanSelect(
      sel.measure(), sel.collection(), q, 0.5, &pool, {});
  QueryResult scan = ParallelLinearScanSelect(sel.measure(), sel.collection(),
                                              q, 0.5, &pool, opts);
  EXPECT_EQ(scan.termination, Termination::kCancelled);
  ExpectSoundPartial(full_scan, scan, "parallel scan");

  QueryResult full_merge =
      ParallelSortByIdSelect(sel.index(), sel.measure(), q, 0.5, &pool, {});
  QueryResult merge =
      ParallelSortByIdSelect(sel.index(), sel.measure(), q, 0.5, &pool, opts);
  EXPECT_EQ(merge.termination, Termination::kCancelled);
  ExpectSoundPartial(full_merge, merge, "parallel sort-by-id");
}

TEST(QueryControlTest, TopKHonorsControl) {
  const SimilaritySelector& sel = Selector();
  const std::string query = ProbeQuery();
  std::atomic<bool> cancel{true};
  SelectOptions opts;
  opts.control.cancel = &cancel;
  QueryResult r = sel.SelectTopK(query, 10, opts);
  EXPECT_EQ(r.termination, Termination::kCancelled);
  EXPECT_TRUE(r.status.ok());
  // A tripped top-k reports only genuinely scored sets — exact scores.
  for (const Match& m : r.matches) {
    EXPECT_DOUBLE_EQ(m.score, sel.measure().Score(sel.Prepare(query), m.id));
  }
}

}  // namespace
}  // namespace simsel
