#include <gtest/gtest.h>

#include "test_util.h"

namespace simsel {
namespace {

using testing_util::MakeSelector;

TEST(SelectorTest, BuildAndQuery) {
  SimilaritySelector sel = MakeSelector(200, 161);
  QueryResult r = sel.Select(sel.collection().text(0), 0.8);
  ASSERT_FALSE(r.matches.empty());
  EXPECT_EQ(r.counters.results, r.matches.size());
}

TEST(SelectorTest, DefaultAlgorithmIsSf) {
  SimilaritySelector sel = MakeSelector(200, 161);
  std::string query = sel.collection().text(5);
  QueryResult via_default = sel.Select(query, 0.7);
  QueryResult via_sf = sel.Select(query, 0.7, AlgorithmKind::kSf);
  testing_util::ExpectSameMatches(via_sf.matches, via_default.matches,
                                  "default-vs-sf");
}

TEST(SelectorTest, PrepareReuse) {
  SimilaritySelector sel = MakeSelector(200, 161);
  PreparedQuery q = sel.Prepare(sel.collection().text(9));
  QueryResult a = sel.SelectPrepared(q, 0.8, AlgorithmKind::kSf, {});
  QueryResult b = sel.SelectPrepared(q, 0.8, AlgorithmKind::kInra, {});
  testing_util::ExpectSameMatches(a.matches, b.matches, "prepare-reuse");
}

TEST(SelectorTest, SizesReportPopulated) {
  SimilaritySelector sel = MakeSelector(200, 161, /*with_sql=*/true);
  IndexSizeReport sizes = sel.Sizes();
  EXPECT_GT(sizes.base_table, 0u);
  EXPECT_GT(sizes.inverted_lists, 0u);
  EXPECT_GT(sizes.skip_lists, 0u);
  EXPECT_GT(sizes.extendible_hash, 0u);
  EXPECT_GT(sizes.gram_table, 0u);
  EXPECT_GT(sizes.btree, 0u);
  // The q-gram decomposition explodes sizes relative to the base table
  // (Figure 5's main observation).
  EXPECT_GT(sizes.inverted_lists, sizes.base_table);
  // Skip lists are far smaller than the extendible hashes (the paper's
  // argument for SF needing only lists + skip lists).
  EXPECT_LT(sizes.skip_lists, sizes.extendible_hash);
}

TEST(SelectorTest, SqlBaselineOptional) {
  SimilaritySelector sel = MakeSelector(100, 171, /*with_sql=*/false);
  EXPECT_EQ(sel.gram_table(), nullptr);
  IndexSizeReport sizes = sel.Sizes();
  EXPECT_EQ(sizes.gram_table, 0u);
  EXPECT_EQ(sizes.btree, 0u);
}

TEST(SelectorTest, RecordIdsMapToInput) {
  std::vector<std::string> records = {"apple", "banana", "cherry"};
  SimilaritySelector sel = SimilaritySelector::Build(records);
  for (SetId s = 0; s < 3; ++s) {
    EXPECT_EQ(sel.collection().text(s), records[s]);
  }
  QueryResult r = sel.Select("apple", 0.99);
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_EQ(r.matches[0].id, 0u);
}

TEST(SelectorTest, NearDuplicatesFound) {
  std::vector<std::string> records = {"jonathan smith", "jonathon smith",
                                      "completely different"};
  SimilaritySelector sel = SimilaritySelector::Build(records);
  QueryResult r = sel.Select("jonathan smith", 0.6);
  ASSERT_GE(r.matches.size(), 2u);
  EXPECT_EQ(r.matches[0].id, 0u);
  EXPECT_EQ(r.matches[1].id, 1u);
}

TEST(SelectorTest, WordTokenizerMode) {
  BuildOptions build;
  build.tokenizer.kind = TokenizerKind::kWord;
  std::vector<std::string> records = {"new york city", "york city hall",
                                      "los angeles"};
  SimilaritySelector sel = SimilaritySelector::Build(records, build);
  QueryResult r = sel.Select("new york city", 0.5);
  ASSERT_FALSE(r.matches.empty());
  EXPECT_EQ(r.matches[0].id, 0u);
}

}  // namespace
}  // namespace simsel
