// Format-version compatibility: an index saved as kVersionLegacy (v2,
// uncompressed) and as kVersionLatest (v4, compressed posting blocks plus
// the sketch section) must load into *behaviourally identical* indexes —
// byte-identical QueryResults (ids, exact score bits, element accounting)
// for every algorithm, in both memory and disk mode — while the posting
// side of the latest file is materially smaller.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/selector.h"
#include "storage/posting_store.h"
#include "test_util.h"

namespace simsel {
namespace {

using testing_util::MakeWordRecords;

constexpr size_t kRecords = 600;

BuildOptions TestBuild() {
  BuildOptions build;
  build.tokenizer.q = 3;
  build.build_sql_baseline = true;
  build.index.page_bytes = 512;
  build.index.skip_fanout = 8;
  build.index.hash_page_bytes = 256;
  build.btree_page_bytes = 512;
  return build;
}

/// One selector per format version, loaded through a Save/Load round trip.
struct VersionedSelectors {
  SimilaritySelector built;   // never serialized (the reference)
  SimilaritySelector via_v2;  // Save(v2) -> Load
  SimilaritySelector via_v3;  // Save(v3) -> Load

  static VersionedSelectors Make() {
    std::vector<std::string> records = MakeWordRecords(kRecords, 0xFEED);
    SimilaritySelector built = SimilaritySelector::Build(records, TestBuild());
    auto roundtrip = [&records, &built](uint32_t version) {
      std::string path = ::testing::TempDir() + "index_version_test_v" +
                         std::to_string(version) + ".simsel";
      EXPECT_TRUE(built.SaveIndex(path, version).ok());
      Result<SimilaritySelector> loaded =
          SimilaritySelector::BuildWithSavedIndex(records, path, TestBuild());
      EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
      std::remove(path.c_str());
      return std::move(*loaded);
    };
    SimilaritySelector via_v2 = roundtrip(InvertedIndex::kVersionLegacy);
    SimilaritySelector via_v3 = roundtrip(InvertedIndex::kVersionLatest);
    return VersionedSelectors{std::move(built), std::move(via_v2),
                              std::move(via_v3)};
  }
};

VersionedSelectors& Selectors() {
  static VersionedSelectors* s = new VersionedSelectors(
      VersionedSelectors::Make());
  return *s;
}

TEST(IndexVersionTest, LoadedIndexesValidate) {
  EXPECT_TRUE(Selectors().via_v2.index().Validate());
  EXPECT_TRUE(Selectors().via_v3.index().Validate());
}

TEST(IndexVersionTest, LoadedListsAreBitIdentical) {
  const InvertedIndex& a = Selectors().via_v2.index();
  const InvertedIndex& b = Selectors().via_v3.index();
  ASSERT_EQ(a.num_tokens(), b.num_tokens());
  ASSERT_EQ(a.total_postings(), b.total_postings());
  for (TokenId t = 0; t < a.num_tokens(); ++t) {
    ASSERT_EQ(a.ListSize(t), b.ListSize(t));
    const size_t n = a.ListSize(t);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(a.LenIds(t)[i], b.LenIds(t)[i]) << "t=" << t << " i=" << i;
      // Exact bit equality, not approximate: the compressed codec is
      // lossless by contract.
      ASSERT_EQ(a.LenLens(t)[i], b.LenLens(t)[i]) << "t=" << t << " i=" << i;
      ASSERT_EQ(a.IdIds(t)[i], b.IdIds(t)[i]) << "t=" << t << " i=" << i;
      ASSERT_EQ(a.IdLens(t)[i], b.IdLens(t)[i]) << "t=" << t << " i=" << i;
    }
  }
}

/// Asserts two results are byte-identical: same ids, *exact* double score
/// equality (not ULP-approximate), same element accounting.
void ExpectIdenticalResults(const QueryResult& a, const QueryResult& b,
                            const std::string& context) {
  ASSERT_EQ(a.matches.size(), b.matches.size()) << context;
  for (size_t i = 0; i < a.matches.size(); ++i) {
    ASSERT_EQ(a.matches[i].id, b.matches[i].id) << context << " rank " << i;
    ASSERT_EQ(a.matches[i].score, b.matches[i].score)
        << context << " score of id " << a.matches[i].id;
  }
  EXPECT_EQ(a.counters.elements_read, b.counters.elements_read) << context;
  EXPECT_EQ(a.counters.elements_skipped, b.counters.elements_skipped)
      << context;
}

class VersionParityParam : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(VersionParityParam, MemoryModeResultsIdentical) {
  VersionedSelectors& s = Selectors();
  // Kernel-execution parity across wire formats. The sketch tier is pinned
  // off: v2/v3 images carry no sketch section, so it could only engage on
  // one side and the counters would (correctly) diverge. Result parity
  // with the tier on is covered by prefilter_parity_test.
  SelectOptions options;
  options.prefilter = false;
  for (double tau : {0.5, 0.8, 0.95}) {
    for (SetId q = 0; q < 10; ++q) {
      const std::string text = s.built.collection().text(q * 13);
      QueryResult ref = s.built.Select(text, tau, GetParam(), options);
      QueryResult r2 = s.via_v2.Select(text, tau, GetParam(), options);
      QueryResult r3 = s.via_v3.Select(text, tau, GetParam(), options);
      const std::string ctx = std::string(AlgorithmKindName(GetParam())) +
                              " tau=" + std::to_string(tau);
      ExpectIdenticalResults(ref, r2, ctx + " (v2)");
      ExpectIdenticalResults(ref, r3, ctx + " (v3)");
    }
  }
}

TEST_P(VersionParityParam, DiskModeResultsIdentical) {
  VersionedSelectors& s = Selectors();
  PostingStore store2 = PostingStore::Build(s.via_v2.index());
  PostingStore store3 = PostingStore::Build(s.via_v3.index());
  SelectOptions disk2, disk3;
  disk2.posting_store = &store2;
  disk3.posting_store = &store3;
  disk2.prefilter = disk3.prefilter = false;  // see MemoryModeResultsIdentical
  SelectOptions ref_options;
  ref_options.prefilter = false;
  for (double tau : {0.5, 0.95}) {
    for (SetId q = 0; q < 6; ++q) {
      const std::string text = s.built.collection().text(q * 29);
      QueryResult ref = s.built.Select(text, tau, GetParam(), ref_options);
      QueryResult r2 = s.via_v2.Select(text, tau, GetParam(), disk2);
      QueryResult r3 = s.via_v3.Select(text, tau, GetParam(), disk3);
      const std::string ctx = std::string(AlgorithmKindName(GetParam())) +
                              " tau=" + std::to_string(tau) + " disk";
      ExpectIdenticalResults(ref, r2, ctx + " (v2)");
      ExpectIdenticalResults(ref, r3, ctx + " (v3)");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, VersionParityParam,
    ::testing::Values(AlgorithmKind::kSf, AlgorithmKind::kHybrid,
                      AlgorithmKind::kInra, AlgorithmKind::kIta,
                      AlgorithmKind::kTa, AlgorithmKind::kNra,
                      AlgorithmKind::kSortById),
    [](const auto& info) {
      // Gtest parameter names must be alphanumeric ("sort-by-id" is not).
      std::string name = AlgorithmKindName(info.param);
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) out.push_back(c);
      }
      return out;
    });

TEST(IndexVersionTest, CompressedPayloadMateriallySmaller) {
  const InvertedIndex& index = Selectors().built.index();
  IndexFileStats v2 = index.EncodedStats(InvertedIndex::kVersionLegacy);
  IndexFileStats v4 = index.EncodedStats(InvertedIndex::kVersionLatest);
  ASSERT_GT(v2.len_payload_bytes, 0u);
  ASSERT_GT(v4.len_payload_bytes, 0u);
  // The acceptance bar: compressed by-length payload at least 25% smaller.
  EXPECT_LE(v4.len_payload_bytes * 4, v2.len_payload_bytes * 3)
      << "v2 len payload " << v2.len_payload_bytes << " vs v4 "
      << v4.len_payload_bytes;
  // The latest format adds the sketch section, which is new payload (k
  // 64-bit words per set), not posting compression — compare the posting
  // side of the file net of it.
  EXPECT_GT(v4.sketch_payload_bytes,
            kRecords * index.sketch_params().k * sizeof(uint64_t) - 1);
  EXPECT_LT(v4.file_bytes - v4.sketch_payload_bytes, v2.file_bytes);
}

}  // namespace
}  // namespace simsel
