#include <gtest/gtest.h>

#include <tuple>

#include "test_util.h"

namespace simsel {
namespace {

using testing_util::ExpectSameMatches;
using testing_util::MakeQueries;
using testing_util::MakeSelector;

// One shared environment: building the index is the expensive part.
const SimilaritySelector& Selector() {
  static const SimilaritySelector* selector =
      new SimilaritySelector(MakeSelector(400, /*seed=*/21));
  return *selector;
}

const std::vector<std::string>& Queries() {
  static const std::vector<std::string>* queries =
      new std::vector<std::string>(MakeQueries(
          []() {
            std::vector<std::string> texts;
            for (SetId s = 0; s < Selector().collection().size(); ++s) {
              texts.push_back(Selector().collection().text(s));
            }
            return texts;
          }(),
          20, /*seed=*/31));
  return *queries;
}

// --- Exactness: every algorithm returns exactly the linear-scan answer. ---

class AlgorithmExactness
    : public ::testing::TestWithParam<std::tuple<AlgorithmKind, double>> {};

TEST_P(AlgorithmExactness, MatchesLinearScan) {
  const auto& [kind, tau] = GetParam();
  const SimilaritySelector& sel = Selector();
  for (const std::string& query : Queries()) {
    PreparedQuery q = sel.Prepare(query);
    QueryResult expected =
        sel.SelectPrepared(q, tau, AlgorithmKind::kLinearScan, {});
    QueryResult actual = sel.SelectPrepared(q, tau, kind, {});
    ExpectSameMatches(expected.matches, actual.matches,
                      std::string(AlgorithmKindName(kind)) + " tau=" +
                          std::to_string(tau) + " q=" + query);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllThresholds, AlgorithmExactness,
    ::testing::Combine(
        ::testing::Values(AlgorithmKind::kSql, AlgorithmKind::kSortById,
                          AlgorithmKind::kTa, AlgorithmKind::kNra,
                          AlgorithmKind::kIta, AlgorithmKind::kInra,
                          AlgorithmKind::kSf, AlgorithmKind::kHybrid,
                          AlgorithmKind::kPrefixFilter),
        ::testing::Values(0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0)),
    [](const auto& info) {
      std::string name = AlgorithmKindName(std::get<0>(info.param));
      if (name == "sort-by-id") name = "SortById";
      int tau_pct = static_cast<int>(std::get<1>(info.param) * 100 + 0.5);
      return name + "_tau" + std::to_string(tau_pct);
    });

// --- Ablations: disabling any property must not change the answer. ---

struct AblationCase {
  const char* name;
  SelectOptions options;
};

class AlgorithmAblation
    : public ::testing::TestWithParam<std::tuple<AlgorithmKind, int>> {
 public:
  static const std::vector<AblationCase>& Cases() {
    static const std::vector<AblationCase>* cases = [] {
      auto* v = new std::vector<AblationCase>;
      SelectOptions o;
      o.length_bounding = false;
      v->push_back({"NLB", o});
      o = SelectOptions();
      o.use_skip_index = false;
      v->push_back({"NSL", o});
      o = SelectOptions();
      o.order_preservation = false;
      v->push_back({"NoOP", o});
      o = SelectOptions();
      o.magnitude_bound = false;
      v->push_back({"NoMB", o});
      o = SelectOptions();
      o.f_cutoff = false;
      v->push_back({"NoFCut", o});
      o = SelectOptions();
      o.lazy_candidate_scan = false;
      v->push_back({"EagerScan", o});
      o = SelectOptions();
      o.length_bounding = false;
      o.use_skip_index = false;
      o.order_preservation = false;
      o.magnitude_bound = false;
      v->push_back({"AllOff", o});
      return v;
    }();
    return *cases;
  }
};

TEST_P(AlgorithmAblation, StillExact) {
  const auto& [kind, case_idx] = GetParam();
  const AblationCase& ablation = Cases()[case_idx];
  const SimilaritySelector& sel = Selector();
  const double tau = 0.75;
  for (const std::string& query : Queries()) {
    PreparedQuery q = sel.Prepare(query);
    QueryResult expected =
        sel.SelectPrepared(q, tau, AlgorithmKind::kLinearScan, {});
    QueryResult actual = sel.SelectPrepared(q, tau, kind, ablation.options);
    ExpectSameMatches(expected.matches, actual.matches,
                      std::string(AlgorithmKindName(kind)) + "/" +
                          ablation.name + " q=" + query);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AblationsStayExact, AlgorithmAblation,
    ::testing::Combine(
        ::testing::Values(AlgorithmKind::kSql, AlgorithmKind::kNra,
                          AlgorithmKind::kIta, AlgorithmKind::kInra,
                          AlgorithmKind::kSf, AlgorithmKind::kHybrid,
                          AlgorithmKind::kPrefixFilter),
        ::testing::Range(0, 7)),
    [](const auto& info) {
      std::string name = AlgorithmKindName(std::get<0>(info.param));
      return name + "_" +
             AlgorithmAblation::Cases()[std::get<1>(info.param)].name;
    });

// --- Degenerate inputs. ---

class AlgorithmEdgeCases : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(AlgorithmEdgeCases, EmptyQueryYieldsNothing) {
  QueryResult r = Selector().Select("", 0.5, GetParam());
  EXPECT_TRUE(r.matches.empty());
}

TEST_P(AlgorithmEdgeCases, UnknownTokensOnlyYieldsNothing) {
  QueryResult r = Selector().Select("0123456789", 0.5, GetParam());
  EXPECT_TRUE(r.matches.empty());
}

TEST_P(AlgorithmEdgeCases, ThresholdAboveOneYieldsNothing) {
  const std::string query = Selector().collection().text(0);
  QueryResult r = Selector().Select(query, 1.2, GetParam());
  EXPECT_TRUE(r.matches.empty());
}

TEST_P(AlgorithmEdgeCases, ExactMatchNearThresholdOne) {
  // Self similarity is 1 up to float rounding of the stored set length, so
  // probe just below 1.
  const std::string query = Selector().collection().text(7);
  QueryResult r = Selector().Select(query, 0.999999, GetParam());
  ASSERT_FALSE(r.matches.empty()) << query;
  bool found_self = false;
  for (const Match& m : r.matches) {
    EXPECT_NEAR(m.score, 1.0, 1e-5);
    found_self |= (m.id == 7);
  }
  EXPECT_TRUE(found_self);
}

TEST_P(AlgorithmEdgeCases, ResultsSortedById) {
  QueryResult r =
      Selector().Select(Selector().collection().text(3), 0.3, GetParam());
  for (size_t i = 1; i < r.matches.size(); ++i) {
    EXPECT_LT(r.matches[i - 1].id, r.matches[i].id);
  }
}

TEST_P(AlgorithmEdgeCases, AllScoresMeetThreshold) {
  const double tau = 0.6;
  QueryResult r =
      Selector().Select(Selector().collection().text(11), tau, GetParam());
  for (const Match& m : r.matches) EXPECT_GE(m.score, tau);
}

INSTANTIATE_TEST_SUITE_P(
    EdgeCases, AlgorithmEdgeCases,
    ::testing::Values(AlgorithmKind::kLinearScan, AlgorithmKind::kSql,
                      AlgorithmKind::kSortById, AlgorithmKind::kTa,
                      AlgorithmKind::kNra, AlgorithmKind::kIta,
                      AlgorithmKind::kInra, AlgorithmKind::kSf,
                      AlgorithmKind::kHybrid, AlgorithmKind::kPrefixFilter),
    [](const auto& info) {
      std::string name = AlgorithmKindName(info.param);
      if (name == "sort-by-id") name = "SortById";
      return name;
    });

}  // namespace
}  // namespace simsel
