#include <gtest/gtest.h>

#include <cstring>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "storage/buffer_pool.h"
#include "storage/posting_store.h"
#include "test_util.h"

// Concurrent-serving soak: many threads running mixed algorithms in memory
// and disk mode against ONE shared selector, posting store and buffer pool.
// Every concurrent result must be byte-identical to the serial ground truth,
// and the shared structures must keep their invariants. This binary carries
// the `concurrency` ctest label: scripts/check.sh always runs it under
// ThreadSanitizer, so any data race on the shared read path fails the gate.

namespace simsel {
namespace {

using testing_util::MakeQueries;
using testing_util::MakeSelector;

const SimilaritySelector& Selector() {
  static const SimilaritySelector* selector = new SimilaritySelector(
      MakeSelector(800, /*seed=*/311, /*with_sql=*/false));
  return *selector;
}

const PostingStore& Store() {
  static const PostingStore* store =
      new PostingStore(PostingStore::Build(Selector().index()));
  return *store;
}

// The disk-capable algorithm mix the soak rotates through (sort-by-id reads
// the by-id arrays and ignores the store; it rides along as the merge-path
// representative).
const AlgorithmKind kSoakKinds[] = {AlgorithmKind::kSf, AlgorithmKind::kInra,
                                    AlgorithmKind::kHybrid,
                                    AlgorithmKind::kIta,
                                    AlgorithmKind::kSortById};

std::vector<std::string> SoakQueries(size_t n) {
  const SimilaritySelector& sel = Selector();
  std::vector<std::string> texts;
  for (SetId s = 0; s < sel.collection().size(); ++s) {
    texts.push_back(sel.collection().text(s));
  }
  return MakeQueries(texts, n, 313);
}

// Compares the deterministic counter fields (everything except the
// pool hit/miss split, which depends on cross-query interleaving when a
// shared pool is in play).
std::string DiffCounters(const AccessCounters& a, const AccessCounters& b) {
  std::ostringstream out;
  auto field = [&](const char* name, uint64_t x, uint64_t y) {
    if (x != y) out << name << ": " << x << " vs " << y << "; ";
  };
  field("elements_read", a.elements_read, b.elements_read);
  field("elements_skipped", a.elements_skipped, b.elements_skipped);
  field("elements_total", a.elements_total, b.elements_total);
  field("seq_page_reads", a.seq_page_reads, b.seq_page_reads);
  field("rand_page_reads", a.rand_page_reads, b.rand_page_reads);
  field("hash_probes", a.hash_probes, b.hash_probes);
  field("candidate_inserts", a.candidate_inserts, b.candidate_inserts);
  field("candidate_prunes", a.candidate_prunes, b.candidate_prunes);
  field("candidate_scan_steps", a.candidate_scan_steps,
        b.candidate_scan_steps);
  field("rows_scanned", a.rows_scanned, b.rows_scanned);
  field("results", a.results, b.results);
  return out.str();
}

std::string DiffMatches(const std::vector<Match>& expected,
                        const std::vector<Match>& actual) {
  if (expected.size() != actual.size()) {
    return "count " + std::to_string(expected.size()) + " vs " +
           std::to_string(actual.size());
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    // Byte-identical: same id and the exact same score double.
    if (expected[i].id != actual[i].id ||
        std::memcmp(&expected[i].score, &actual[i].score, sizeof(double)) !=
            0) {
      return "rank " + std::to_string(i) + " differs";
    }
  }
  return "";
}

TEST(ConcurrencySoakTest, MixedAlgorithmsDiskAndMemoryMatchSerial) {
  const SimilaritySelector& sel = Selector();
  const PostingStore& store = Store();
  const std::vector<std::string> queries = SoakQueries(12);
  const double tau = 0.7;
  const size_t num_kinds = std::size(kSoakKinds);

  // Serial ground truth, memory mode (disk-mode equality to memory mode is
  // posting_store_test's contract; here it must also hold under load).
  std::vector<PreparedQuery> prepared;
  std::vector<std::vector<QueryResult>> expected(queries.size());
  for (const std::string& query : queries) {
    prepared.push_back(sel.Prepare(query));
  }
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (AlgorithmKind kind : kSoakKinds) {
      expected[qi].push_back(sel.SelectPrepared(prepared[qi], tau, kind, {}));
    }
  }

  // One shared server-wide cache, concurrently touched by every query.
  BufferPool shared_pool(4096);
  const size_t kTasks = queries.size() * num_kinds * 2 * 2;  // x mode x reps
  std::vector<std::string> failures(kTasks);
  ThreadPool pool(8);
  ParallelFor(&pool, kTasks, [&](size_t i) {
    const size_t qi = i % queries.size();
    const size_t ki = (i / queries.size()) % num_kinds;
    const bool disk = (i / (queries.size() * num_kinds)) % 2 == 1;
    SelectOptions opts;
    opts.buffer_pool = &shared_pool;
    if (disk) opts.posting_store = &store;
    QueryResult got =
        sel.SelectPrepared(prepared[qi], tau, kSoakKinds[ki], opts);
    std::string diff = DiffMatches(expected[qi][ki].matches, got.matches);
    if (!diff.empty()) {
      failures[i] = std::string(AlgorithmKindName(kSoakKinds[ki])) +
                    (disk ? " disk" : " mem") + " q" + std::to_string(qi) +
                    ": " + diff;
    }
  });
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_TRUE(failures[i].empty()) << failures[i];
  }
  // The shared pool stayed within capacity and its tallies add up.
  EXPECT_LE(shared_pool.size(), shared_pool.capacity());
  EXPECT_GT(shared_pool.hits() + shared_pool.misses(), 0u);
}

TEST(ConcurrencySoakTest, ConcurrentDiskCursorsDoNotPerturbAccounting) {
  // Same query re-run from many threads in disk mode: per-query counters
  // must come out identical every time (no bleed-through of another
  // thread's reads into this query's accounting).
  const SimilaritySelector& sel = Selector();
  SelectOptions disk;
  disk.posting_store = &Store();
  PreparedQuery q = sel.Prepare(sel.collection().text(7));
  QueryResult serial = sel.SelectPrepared(q, 0.8, AlgorithmKind::kSf, disk);

  std::vector<std::string> failures(64);
  ThreadPool pool(8);
  ParallelFor(&pool, failures.size(), [&](size_t i) {
    QueryResult got = sel.SelectPrepared(q, 0.8, AlgorithmKind::kSf, disk);
    std::string diff = DiffCounters(serial.counters, got.counters);
    if (diff.empty()) diff = DiffMatches(serial.matches, got.matches);
    if (!diff.empty()) failures[i] = diff;
  });
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
}

TEST(ConcurrencySoakTest, IntraQueryParallelSortByIdUnderConcurrentCallers) {
  // Several outer threads each drive the intra-query parallel merge with
  // its own inner pool over the one shared index.
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(5));
  QueryResult serial = sel.SelectPrepared(q, 0.7, AlgorithmKind::kSortById, {});

  std::vector<std::string> failures(8);
  ThreadPool outer(4);
  ParallelFor(&outer, failures.size(), [&](size_t i) {
    ThreadPool inner(3);
    QueryResult got =
        ParallelSortByIdSelect(sel.index(), sel.measure(), q, 0.7, &inner);
    std::string diff = DiffMatches(serial.matches, got.matches);
    if (!diff.empty()) failures[i] = diff;
  });
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
}

// --- Satellite: batch determinism across every algorithm kind. ---

class BatchDeterminismParam : public ::testing::TestWithParam<bool> {};

TEST_P(BatchDeterminismParam, BatchSelectIdenticalToSerialLoop) {
  const bool disk = GetParam();
  const SimilaritySelector& sel = Selector();
  const std::vector<std::string> queries = SoakQueries(12);
  const double tau = 0.75;
  SelectOptions opts;
  if (disk) opts.posting_store = &Store();

  const AlgorithmKind kinds[] = {
      AlgorithmKind::kSortById, AlgorithmKind::kTa,  AlgorithmKind::kNra,
      AlgorithmKind::kIta,      AlgorithmKind::kInra, AlgorithmKind::kSf,
      AlgorithmKind::kHybrid,   AlgorithmKind::kPrefixFilter};
  ThreadPool pool(6);
  for (AlgorithmKind kind : kinds) {
    std::vector<QueryResult> batch =
        BatchSelect(sel, queries, tau, kind, opts, &pool);
    ASSERT_EQ(batch.size(), queries.size());
    AccessCounters serial_total, batch_total;
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryResult serial = sel.Select(queries[i], tau, kind, opts);
      std::string context = std::string(AlgorithmKindName(kind)) +
                            (disk ? " disk" : " mem") + " query " +
                            std::to_string(i);
      EXPECT_EQ(DiffMatches(serial.matches, batch[i].matches), "") << context;
      // Per-query accounting is deterministic: the batch run saw exactly the
      // serial loop's counters, then the aggregates follow.
      EXPECT_EQ(DiffCounters(serial.counters, batch[i].counters), "")
          << context;
      serial_total.Merge(serial.counters);
      batch_total.Merge(batch[i].counters);
    }
    EXPECT_EQ(DiffCounters(serial_total, batch_total), "")
        << AlgorithmKindName(kind) << " aggregate";
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, BatchDeterminismParam, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "DiskMode" : "MemoryMode";
                         });

}  // namespace
}  // namespace simsel
