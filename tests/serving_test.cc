// Serving-layer tests: sharded scatter-gather exactness against the
// single-index ground truth (all algorithms, memory and disk mode), result
// cache hit/invalidation/eviction semantics, and a concurrency soak that
// runs under the TSAN `concurrency` ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/parallel.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "serve/result_cache.h"
#include "serve/sharded_selector.h"
#include "storage/posting_store.h"
#include "test_util.h"

namespace simsel {
namespace {

using serve::CachedResult;
using serve::ResultCache;
using serve::ResultCacheOptions;
using serve::ShardedSelector;
using serve::ShardedSelectorOptions;
using testing_util::ExpectSameMatches;
using testing_util::MakeQueries;
using testing_util::MakeWordRecords;

constexpr AlgorithmKind kShardableKinds[] = {
    AlgorithmKind::kLinearScan, AlgorithmKind::kSortById,
    AlgorithmKind::kTa,         AlgorithmKind::kNra,
    AlgorithmKind::kIta,        AlgorithmKind::kInra,
    AlgorithmKind::kSf,         AlgorithmKind::kHybrid,
    AlgorithmKind::kPrefixFilter};

BuildOptions SmallBuild() {
  BuildOptions build;
  build.tokenizer.q = 3;
  build.index.page_bytes = 512;
  build.index.skip_fanout = 8;
  build.index.hash_page_bytes = 256;
  return build;
}

ShardedSelectorOptions ServeOptions(size_t shards, bool disk = false,
                                    size_t cache_bytes = 0) {
  ShardedSelectorOptions o;
  o.num_shards = shards;
  o.build = SmallBuild();
  o.disk_mode = disk;
  if (disk) o.pool_pages = 64;
  o.cache_bytes = cache_bytes;
  return o;
}

TEST(ShardedSelectorTest, ShardsPartitionTheCollection) {
  std::vector<std::string> records = MakeWordRecords(103, 7);
  ShardedSelector sharded = ShardedSelector::Build(records, ServeOptions(4));
  ASSERT_EQ(sharded.num_shards(), 4u);
  SetId expected_begin = 0;
  uint64_t postings = 0;
  for (size_t i = 0; i < sharded.num_shards(); ++i) {
    EXPECT_EQ(sharded.shard_begin(i), expected_begin);
    EXPECT_LE(sharded.shard_begin(i), sharded.shard_end(i));
    expected_begin = sharded.shard_end(i);
    EXPECT_TRUE(sharded.shard_index(i).Validate());
    postings += sharded.shard_index(i).total_postings();
  }
  EXPECT_EQ(expected_begin, sharded.collection().size());
  // Every posting lands in exactly one shard.
  SimilaritySelector single = SimilaritySelector::Build(records, SmallBuild());
  EXPECT_EQ(postings, single.index().total_postings());
}

TEST(ShardedSelectorTest, MoreShardsThanRecordsClamps) {
  std::vector<std::string> records = MakeWordRecords(3, 11);
  ShardedSelector sharded = ShardedSelector::Build(records, ServeOptions(16));
  EXPECT_LE(sharded.num_shards(), records.size());
  QueryResult r = sharded.Select(records[0], 0.5);
  EXPECT_TRUE(r.complete());
  EXPECT_FALSE(r.matches.empty());
}

// The tentpole exactness claim: for every algorithm, in memory and disk
// mode, with and without a thread pool, the merged sharded answer is
// byte-identical to the single-index answer (ids, exact scores, order).
TEST(ShardedSelectorTest, ByteIdenticalToSingleIndexAllAlgorithms) {
  std::vector<std::string> records = MakeWordRecords(160, 42);
  SimilaritySelector single = SimilaritySelector::Build(records, SmallBuild());
  std::vector<std::string> queries = MakeQueries(records, 10, 99);
  queries.push_back("");                    // empty query
  queries.push_back("zzzzqqqqxxxx");        // out-of-vocabulary
  ThreadPool pool(3);

  for (bool disk : {false, true}) {
    for (size_t shards : {1u, 4u}) {
      ShardedSelector sharded =
          ShardedSelector::Build(records, ServeOptions(shards, disk));
      for (bool with_pool : {false, true}) {
        sharded.set_thread_pool(with_pool ? &pool : nullptr);
        for (AlgorithmKind kind : kShardableKinds) {
          for (double tau : {0.5, 0.8}) {
            for (const std::string& query : queries) {
              QueryResult expected = single.Select(query, tau, kind);
              QueryResult actual = sharded.Select(query, tau, kind);
              ASSERT_TRUE(actual.complete());
              ExpectSameMatches(
                  expected.matches, actual.matches,
                  std::string(AlgorithmKindName(kind)) +
                      (disk ? " disk" : " mem") + " shards=" +
                      std::to_string(shards) + " tau=" + std::to_string(tau) +
                      " q=\"" + query + "\"");
            }
          }
        }
      }
    }
  }
}

TEST(ShardedSelectorTest, SqlIsRejected) {
  std::vector<std::string> records = MakeWordRecords(40, 5);
  ShardedSelector sharded = ShardedSelector::Build(records, ServeOptions(2));
  QueryResult r = sharded.Select(records[0], 0.6, AlgorithmKind::kSql);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(r.matches.empty());
}

TEST(ShardedSelectorTest, ExpiredDeadlineReportsRootCauseNotCancelled) {
  std::vector<std::string> records = MakeWordRecords(120, 13);
  ShardedSelector sharded = ShardedSelector::Build(records, ServeOptions(4));
  ThreadPool pool(3);
  sharded.set_thread_pool(&pool);
  SelectOptions options;
  options.control.deadline =
      QueryControl::Clock::now() - std::chrono::milliseconds(1);
  QueryResult r = sharded.Select(records[0], 0.5, AlgorithmKind::kSf, options);
  // Every shard trips on the deadline; the merge must report the first
  // shard's root cause, never the sibling-cancel it induced.
  EXPECT_EQ(r.termination, Termination::kDeadline);
  EXPECT_TRUE(r.status.ok());
}

#ifndef SIMSEL_DISABLE_TRACING
TEST(ShardedSelectorTest, TracedScatterStitchesOneSubtreePerShard) {
  // Regression for the PR 3 workaround: shard tasks used to run traceless.
  // A traced scatter query now yields ONE hierarchical span tree with a
  // shard[i] subtree per shard, stitched at the gather point.
  std::vector<std::string> records = MakeWordRecords(120, 7);
  ShardedSelector sharded = ShardedSelector::Build(records, ServeOptions(4));
  ThreadPool pool(3);
  sharded.set_thread_pool(&pool);
  auto run = [&](obs::QueryTrace* trace) {
    SelectOptions options;
    options.trace = trace;
    return sharded.Select(records[5], 0.5, AlgorithmKind::kSf, options);
  };
  obs::QueryTrace first, second;
  QueryResult r1 = run(&first);
  QueryResult r2 = run(&second);
  ASSERT_TRUE(r1.complete());
  ASSERT_TRUE(r2.complete());
  EXPECT_EQ(r1.trace, &first);

  const std::string structure = first.StructureString();
  EXPECT_EQ(structure.rfind("0:query\n", 0), 0u) << structure;
  EXPECT_NE(structure.find("1:tokenize\n"), std::string::npos);
  EXPECT_NE(structure.find("1:scatter\n"), std::string::npos);
  EXPECT_NE(structure.find("1:merge\n"), std::string::npos);
  // One shard[i] wrapper per shard, in shard order, each followed by the
  // worker's own depth-3 span subtree.
  size_t pos = 0;
  for (size_t i = 0; i < sharded.num_shards(); ++i) {
    std::string wrapper = "2:shard[" + std::to_string(i) + "]\n3:";
    size_t at = structure.find(wrapper, pos);
    ASSERT_NE(at, std::string::npos) << "missing shard " << i << " subtree in\n"
                                     << structure;
    pos = at + wrapper.size();
  }
  // The stitched tree shape is byte-stable run to run.
  EXPECT_EQ(structure, second.StructureString());
}

TEST(ShardedSelectorTest, TrippedUntracedQueryLandsInSlowQueryLog) {
  // Tail sampling end to end: an untraced serve query that trips its
  // deadline must leave a slow-query record carrying the termination reason
  // and the sampled span tree — without the sampling trace ever escaping to
  // the caller.
  obs::FlightRecorder::Global().ResetForTest();
  std::vector<std::string> records = MakeWordRecords(120, 13);
  ShardedSelector sharded = ShardedSelector::Build(records, ServeOptions(4));
  ThreadPool pool(3);
  sharded.set_thread_pool(&pool);
  SelectOptions options;
  options.control.deadline =
      QueryControl::Clock::now() - std::chrono::milliseconds(1);
  QueryResult r = sharded.Select(records[0], 0.5, AlgorithmKind::kSf, options);
  EXPECT_EQ(r.termination, Termination::kDeadline);
  EXPECT_EQ(r.trace, nullptr);  // the sampling trace stays private

  std::vector<std::string> log = obs::FlightRecorder::Global().SlowQueryLog();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_NE(log[0].find("\"termination\":\"deadline\""), std::string::npos)
      << log[0];
  // The sampling trace attaches at SelectPrepared, so the recorded tree
  // starts at the scatter and carries the stitched per-shard subtrees.
  EXPECT_NE(log[0].find("\"name\":\"scatter\""), std::string::npos) << log[0];
  EXPECT_NE(log[0].find("\"name\":\"shard[0]\""), std::string::npos) << log[0];
  EXPECT_GE(obs::FlightRecorder::Global().slow_queries_recorded(), 1u);
  obs::FlightRecorder::Global().ResetForTest();
}
#endif  // SIMSEL_DISABLE_TRACING

TEST(ShardedSelectorTest, CallerCancelTokenStopsTheQuery) {
  std::vector<std::string> records = MakeWordRecords(120, 17);
  ShardedSelector sharded = ShardedSelector::Build(records, ServeOptions(4));
  std::atomic<bool> cancel{true};  // pre-cancelled
  SelectOptions options;
  options.control.cancel = &cancel;
  QueryResult r = sharded.Select(records[0], 0.5, AlgorithmKind::kSf, options);
  EXPECT_EQ(r.termination, Termination::kCancelled);
}

TEST(ShardedSelectorTest, BatchSelectMatchesSerialLoop) {
  std::vector<std::string> records = MakeWordRecords(80, 23);
  ShardedSelector sharded = ShardedSelector::Build(records, ServeOptions(3));
  ThreadPool pool(2);
  sharded.set_thread_pool(&pool);
  std::vector<std::string> queries = MakeQueries(records, 8, 31);
  std::vector<QueryResult> batch =
      serve::BatchSelect(sharded, queries, 0.6, AlgorithmKind::kSf, {});
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryResult serial = sharded.Select(queries[i], 0.6, AlgorithmKind::kSf);
    ExpectSameMatches(serial.matches, batch[i].matches,
                      "batch query " + std::to_string(i));
  }
}

TEST(ResultCacheTest, KeySeparatesEveryAnswerAffectingInput) {
  PreparedQuery q;
  q.tokens = {1, 5, 9};
  q.tfs = {1, 2, 1};
  q.length = 2.5;
  q.multiset_size = 4;
  SelectOptions options;
  std::string base =
      ResultCache::MakeKey(q, 0.8, AlgorithmKind::kSf, options, false, "IDF");
  EXPECT_EQ(base, ResultCache::MakeKey(q, 0.8, AlgorithmKind::kSf, options,
                                       false, "IDF"));
  EXPECT_NE(base, ResultCache::MakeKey(q, 0.81, AlgorithmKind::kSf, options,
                                       false, "IDF"));
  EXPECT_NE(base, ResultCache::MakeKey(q, 0.8, AlgorithmKind::kInra, options,
                                       false, "IDF"));
  EXPECT_NE(base, ResultCache::MakeKey(q, 0.8, AlgorithmKind::kSf, options,
                                       true, "IDF"));
  EXPECT_NE(base, ResultCache::MakeKey(q, 0.8, AlgorithmKind::kSf, options,
                                       false, "BM25"));
  SelectOptions ablated;
  ablated.use_skip_index = false;
  EXPECT_NE(base, ResultCache::MakeKey(q, 0.8, AlgorithmKind::kSf, ablated,
                                       false, "IDF"));
  PreparedQuery q2 = q;
  q2.length = 2.75;  // same tokens, more unknown-token mass
  EXPECT_NE(base, ResultCache::MakeKey(q2, 0.8, AlgorithmKind::kSf, options,
                                       false, "IDF"));
  PreparedQuery q3 = q;
  q3.tfs = {1, 1, 1};
  EXPECT_NE(base, ResultCache::MakeKey(q3, 0.8, AlgorithmKind::kSf, options,
                                       false, "IDF"));
}

TEST(ResultCacheTest, LruEvictionAndByteAccounting) {
  ResultCacheOptions options;
  options.num_shards = 1;  // deterministic global LRU
  std::string key_a(8, 'a'), key_b(8, 'b'), key_c(8, 'c');
  std::vector<Match> matches = {{1, 0.9}, {2, 0.8}};
  options.capacity_bytes = 2 * ResultCache::EntryBytes(key_a, matches.size());
  ResultCache cache(options);

  AccessCounters counters;
  counters.elements_read = 7;
  cache.Insert(key_a, 1, matches, counters);
  cache.Insert(key_b, 1, matches, counters);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.size_bytes(),
            2 * ResultCache::EntryBytes(key_a, matches.size()));

  // Touch A so B is the LRU victim when C arrives.
  CachedResult out;
  ASSERT_TRUE(cache.Lookup(key_a, 1, &out));
  EXPECT_EQ(out.matches.size(), matches.size());
  EXPECT_EQ(out.counters.elements_read, 7u);
  cache.Insert(key_c, 1, matches, counters);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Lookup(key_a, 1, &out));
  EXPECT_TRUE(cache.Lookup(key_c, 1, &out));
  EXPECT_FALSE(cache.Lookup(key_b, 1, &out));

  // An entry larger than the whole budget is dropped, not force-fitted.
  std::vector<Match> huge(4096, Match{1, 0.5});
  cache.Insert(key_b, 1, huge, counters);
  EXPECT_FALSE(cache.Lookup(key_b, 1, &out));

  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(ResultCacheTest, StaleEpochInvalidatesOnLookup) {
  ResultCacheOptions options;
  options.capacity_bytes = 1u << 16;
  ResultCache cache(options);
  std::vector<Match> matches = {{3, 0.7}};
  cache.Insert("key", 1, matches, AccessCounters{});
  CachedResult out;
  ASSERT_TRUE(cache.Lookup("key", 1, &out));
  EXPECT_FALSE(cache.Lookup("key", 2, &out));  // stale: erased + counted
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_FALSE(cache.Lookup("key", 2, &out));  // really gone
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST(ResultCacheTest, ResidentBytesGaugeReconcilesUnderConcurrentChurn) {
  // The process-wide simsel_result_cache_bytes gauge is shared by every
  // ResultCache instance, so the test works in deltas: whatever this
  // instance adds under concurrent Insert/Lookup/evict churn must leave the
  // gauge exactly where it started once Clear empties the cache.
  obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("simsel_result_cache_bytes");
  const int64_t before = gauge->Value();

  ResultCacheOptions options;
  options.capacity_bytes = 1u << 14;  // small budget => constant eviction
  options.num_shards = 2;
  {
    ResultCache cache(options);
    std::vector<Match> matches(16, Match{1, 0.5});
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 3; ++t) {
      writers.emplace_back([&, t] {
        AccessCounters counters;
        for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
          std::string key =
              "k" + std::to_string(t) + "-" + std::to_string(i % 64);
          cache.Insert(key, 1, matches, counters);
          CachedResult out;
          cache.Lookup(key, 1, &out);
          if (i % 16 == 15) cache.Lookup(key, 2, &out);  // invalidate path
          if (i >= 400) break;
        }
      });
    }
    std::thread clearer([&] {
      for (int i = 0; i < 10; ++i) {
        cache.Clear();
        std::this_thread::yield();
      }
    });
    for (std::thread& w : writers) w.join();
    stop.store(true, std::memory_order_relaxed);
    clearer.join();

    // Mid-life checkpoint: with traffic quiesced, the gauge delta must equal
    // the resident truth exactly — not merely converge eventually.
    EXPECT_EQ(gauge->Value() - before,
              static_cast<int64_t>(cache.size_bytes()));
    cache.Clear();
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.size_bytes(), 0u);
    EXPECT_EQ(gauge->Value(), before);
  }
  // Destruction of an already-empty cache must not double-subtract.
  EXPECT_EQ(gauge->Value(), before);
}

TEST(ShardedSelectorTest, CacheHitReturnsIdenticalQueryResult) {
  std::vector<std::string> records = MakeWordRecords(100, 3);
  ShardedSelector sharded = ShardedSelector::Build(
      records, ServeOptions(3, /*disk=*/false, /*cache_bytes=*/1u << 20));
  ResultCache* cache = sharded.result_cache();
  ASSERT_NE(cache, nullptr);

  std::string query = records[7];
  QueryResult miss = sharded.Select(query, 0.6);
  EXPECT_EQ(cache->hits(), 0u);
  EXPECT_EQ(cache->misses(), 1u);
  EXPECT_EQ(cache->insertions(), 1u);

  QueryResult hit = sharded.Select(query, 0.6);
  EXPECT_EQ(cache->hits(), 1u);
  ExpectSameMatches(miss.matches, hit.matches, "cache hit");
  // The hit returns the cached execution's accounting verbatim.
  EXPECT_EQ(miss.counters.ToString(), hit.counters.ToString());
  EXPECT_EQ(hit.termination, Termination::kCompleted);
  EXPECT_TRUE(hit.status.ok());

  // A different tau is a different entry, not a hit.
  sharded.Select(query, 0.9);
  EXPECT_EQ(cache->hits(), 1u);
  EXPECT_EQ(cache->misses(), 2u);
}

TEST(ShardedSelectorTest, EpochBumpInvalidatesCachedAnswers) {
  std::vector<std::string> records = MakeWordRecords(100, 19);
  ShardedSelector sharded = ShardedSelector::Build(
      records, ServeOptions(2, /*disk=*/false, /*cache_bytes=*/1u << 20));
  ResultCache* cache = sharded.result_cache();
  std::string query = records[0];

  QueryResult first = sharded.Select(query, 0.6);
  CachedResult peek;
  ASSERT_TRUE(cache->Lookup(
      ResultCache::MakeKey(sharded.Prepare(query), 0.6, AlgorithmKind::kSf,
                           SelectOptions{}, false, sharded.measure().name()),
      sharded.epoch(), &peek));

  sharded.BumpEpoch();
  QueryResult after = sharded.Select(query, 0.6);  // recomputed, re-inserted
  EXPECT_EQ(cache->invalidations(), 1u);
  ExpectSameMatches(first.matches, after.matches, "post-bump recompute");
  sharded.Select(query, 0.6);
  EXPECT_EQ(cache->hits(), 2u);  // fresh entry serves again

  // Mirroring an external version counter works the same way.
  sharded.SetEpoch(41);
  sharded.Select(query, 0.6);
  EXPECT_EQ(cache->invalidations(), 2u);
}

TEST(ShardedSelectorTest, PartialResultsAreNotCached) {
  std::vector<std::string> records = MakeWordRecords(120, 29);
  ShardedSelector sharded = ShardedSelector::Build(
      records, ServeOptions(2, /*disk=*/false, /*cache_bytes=*/1u << 20));
  SelectOptions options;
  options.control.max_elements_read = 1;  // trips almost immediately
  QueryResult r = sharded.Select(records[1], 0.5, AlgorithmKind::kSf, options);
  EXPECT_EQ(r.termination, Termination::kBudget);
  EXPECT_EQ(sharded.result_cache()->insertions(), 0u);
  // The untripped rerun is cached and complete.
  QueryResult full = sharded.Select(records[1], 0.5, AlgorithmKind::kSf);
  EXPECT_TRUE(full.complete());
  EXPECT_EQ(sharded.result_cache()->insertions(), 1u);
}

// TSAN leg: concurrent callers on one shared sharded selector + pool +
// cache, with an epoch bumper racing them. Every complete answer must match
// the serial ground truth.
TEST(ShardedSelectorTest, ConcurrentServingSoak) {
  std::vector<std::string> records = MakeWordRecords(140, 57);
  SimilaritySelector single = SimilaritySelector::Build(records, SmallBuild());
  ShardedSelector sharded = ShardedSelector::Build(
      records, ServeOptions(4, /*disk=*/false, /*cache_bytes=*/1u << 20));
  ThreadPool pool(4);
  sharded.set_thread_pool(&pool);

  std::vector<std::string> queries = MakeQueries(records, 12, 61);
  constexpr AlgorithmKind kSoakKinds[] = {
      AlgorithmKind::kSf, AlgorithmKind::kInra, AlgorithmKind::kHybrid,
      AlgorithmKind::kIta, AlgorithmKind::kSortById};
  std::vector<std::vector<Match>> expected(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    expected[i] = single.Select(queries[i], 0.6).matches;  // SF ground truth
  }

  constexpr size_t kCallers = 4;
  constexpr size_t kRounds = 30;
  std::vector<std::thread> callers;
  std::atomic<bool> failed{false};
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (size_t r = 0; r < kRounds && !failed.load(); ++r) {
        size_t qi = (c * kRounds + r) % queries.size();
        AlgorithmKind kind = kSoakKinds[(c + r) % std::size(kSoakKinds)];
        QueryResult result = sharded.Select(queries[qi], 0.6, kind);
        if (!result.complete()) {
          failed.store(true);
          ADD_FAILURE() << "query unexpectedly incomplete";
          continue;
        }
        // All soak kinds agree with SF on the answer set.
        if (result.matches.size() != expected[qi].size()) {
          failed.store(true);
          ADD_FAILURE() << "caller " << c << " round " << r << " got "
                        << result.matches.size() << " matches, expected "
                        << expected[qi].size();
          continue;
        }
        for (size_t m = 0; m < result.matches.size(); ++m) {
          if (result.matches[m].id != expected[qi][m].id ||
              result.matches[m].score != expected[qi][m].score) {
            failed.store(true);
            ADD_FAILURE() << "caller " << c << " round " << r
                          << " mismatch at rank " << m;
            break;
          }
        }
      }
    });
  }
  std::thread bumper([&] {
    for (int i = 0; i < 20; ++i) {
      sharded.BumpEpoch();
      std::this_thread::yield();
    }
  });
  for (std::thread& t : callers) t.join();
  bumper.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace simsel
