#include <gtest/gtest.h>

#include "core/sql_baseline.h"
#include "rel/hash_aggregate.h"
#include "rel/sql_baseline_plan.h"
#include "test_util.h"

namespace simsel {
namespace {

using testing_util::MakeSelector;

const SimilaritySelector& Selector() {
  static const SimilaritySelector* selector =
      new SimilaritySelector(MakeSelector(400, /*seed=*/151, true));
  return *selector;
}

TEST(GramTableTest, RowCountMatchesPostings) {
  const SimilaritySelector& sel = Selector();
  ASSERT_NE(sel.gram_table(), nullptr);
  EXPECT_EQ(sel.gram_table()->num_rows(), sel.index().total_postings());
  EXPECT_TRUE(sel.gram_table()->index().Validate());
}

TEST(GramTableTest, RowsAreQueryIndependentWeights) {
  const SimilaritySelector& sel = Selector();
  const GramTable& table = *sel.gram_table();
  // Scan a stretch of rows and recompute their weights.
  size_t checked = 0;
  for (auto s = table.index().Begin(); s.Valid() && checked < 500;
       s.Next(), ++checked) {
    const GramKey& key = s.key();
    double idf = sel.measure().idf(key.gram);
    float expected = static_cast<float>(idf * idf / key.len);
    EXPECT_FLOAT_EQ(s.value(), expected);
    EXPECT_FLOAT_EQ(key.len, sel.measure().set_length(key.id));
  }
  EXPECT_EQ(checked, 500u);
}

TEST(SqlBaselineTest, LengthBoundingScansFewerRows) {
  const SimilaritySelector& sel = Selector();
  SelectOptions lb, nlb;
  nlb.length_bounding = false;
  uint64_t lb_rows = 0, nlb_rows = 0;
  for (SetId s = 0; s < 20; ++s) {
    PreparedQuery q = sel.Prepare(sel.collection().text(s));
    lb_rows += sel.SelectPrepared(q, 0.9, AlgorithmKind::kSql, lb)
                   .counters.rows_scanned;
    nlb_rows += sel.SelectPrepared(q, 0.9, AlgorithmKind::kSql, nlb)
                    .counters.rows_scanned;
  }
  EXPECT_LT(lb_rows, nlb_rows);
}

TEST(SqlBaselineTest, ChargesBTreePages) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(0));
  QueryResult r = sel.SelectPrepared(q, 0.8, AlgorithmKind::kSql, {});
  // One root-to-leaf descent per query gram.
  EXPECT_GE(r.counters.rand_page_reads, q.tokens.size());
}

TEST(SqlBaselineTest, NlbRowsEqualListSizes) {
  // Without length bounding the plan scans each gram's full range: exactly
  // the inverted list sizes.
  const SimilaritySelector& sel = Selector();
  SelectOptions nlb;
  nlb.length_bounding = false;
  PreparedQuery q = sel.Prepare(sel.collection().text(33));
  QueryResult r = sel.SelectPrepared(q, 0.8, AlgorithmKind::kSql, nlb);
  uint64_t expected = 0;
  for (TokenId t : q.tokens) expected += sel.index().ListSize(t);
  EXPECT_EQ(r.counters.rows_scanned, expected);
}

TEST(HashAggregateTest, GroupsAndScores) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(8));
  ASSERT_GE(q.tokens.size(), 2u);
  HashAggregate agg(q.tokens.size());
  // Simulate set 8 matching every list.
  float len = sel.measure().set_length(8);
  for (size_t i = 0; i < q.tokens.size(); ++i) agg.Add(8, i, len);
  agg.Add(9, 0, sel.measure().set_length(9));
  EXPECT_EQ(agg.num_groups(), 2u);
  std::vector<Match> out = agg.Finalize(sel.measure(), q, 0.9);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 8u);
  EXPECT_NEAR(out[0].score, 1.0, 1e-5);
}

TEST(HashAggregateTest, DuplicateAddsAreIdempotent) {
  HashAggregate agg(4);
  agg.Add(1, 2, 3.0f);
  agg.Add(1, 2, 3.0f);
  EXPECT_EQ(agg.num_groups(), 1u);
}

}  // namespace
}  // namespace simsel
