#include <gtest/gtest.h>

#include "index/collection.h"
#include "index/dictionary.h"
#include "text/tokenizer.h"

namespace simsel {
namespace {

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  TokenId a = dict.Intern("foo");
  TokenId b = dict.Intern("foo");
  TokenId c = dict.Intern("bar");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.token(a), "foo");
  EXPECT_EQ(dict.token(c), "bar");
}

TEST(DictionaryTest, FindMissesUnknown) {
  Dictionary dict;
  dict.Intern("known");
  EXPECT_TRUE(dict.Find("known").has_value());
  EXPECT_FALSE(dict.Find("unknown").has_value());
}

TEST(DictionaryTest, DfCounting) {
  Dictionary dict;
  TokenId a = dict.Intern("a");
  EXPECT_EQ(dict.df(a), 0u);
  dict.AddSetOccurrence(a);
  dict.AddSetOccurrence(a);
  EXPECT_EQ(dict.df(a), 2u);
}

TEST(DictionaryTest, SizeBytesGrows) {
  Dictionary dict;
  size_t empty = dict.SizeBytes();
  dict.Intern("some-long-token-value");
  EXPECT_GT(dict.SizeBytes(), empty);
}

TEST(CollectionTest, BuildFromWords) {
  Tokenizer tok(TokenizerOptions{.kind = TokenizerKind::kWord});
  Collection c = Collection::Build({"main st", "main ave", "st main main"},
                                   tok);
  ASSERT_EQ(c.size(), 3u);
  // "main" appears in 3 sets, "st" in 2, "ave" in 1.
  TokenId main_id = *c.dictionary().Find("main");
  TokenId st_id = *c.dictionary().Find("st");
  TokenId ave_id = *c.dictionary().Find("ave");
  EXPECT_EQ(c.dictionary().df(main_id), 3u);
  EXPECT_EQ(c.dictionary().df(st_id), 2u);
  EXPECT_EQ(c.dictionary().df(ave_id), 1u);
}

TEST(CollectionTest, SetsAreSortedDistinctWithTfs) {
  Tokenizer tok(TokenizerOptions{.kind = TokenizerKind::kWord});
  Collection c = Collection::Build({"b a b b c"}, tok);
  const SetRecord& set = c.set(0);
  ASSERT_EQ(set.tokens.size(), 3u);
  for (size_t i = 1; i < set.tokens.size(); ++i) {
    EXPECT_LT(set.tokens[i - 1], set.tokens[i]);
  }
  EXPECT_EQ(set.multiset_size, 5u);
  // tf of "b" is 3.
  TokenId b_id = *c.dictionary().Find("b");
  for (size_t i = 0; i < set.tokens.size(); ++i) {
    if (set.tokens[i] == b_id) {
      EXPECT_EQ(set.tfs[i], 3u);
    }
  }
}

TEST(CollectionTest, Contains) {
  Tokenizer tok(TokenizerOptions{.kind = TokenizerKind::kWord});
  Collection c = Collection::Build({"alpha beta", "gamma"}, tok);
  TokenId alpha = *c.dictionary().Find("alpha");
  TokenId gamma = *c.dictionary().Find("gamma");
  EXPECT_TRUE(c.Contains(0, alpha));
  EXPECT_FALSE(c.Contains(0, gamma));
  EXPECT_TRUE(c.Contains(1, gamma));
}

TEST(CollectionTest, TextPreserved) {
  Tokenizer tok;
  Collection c = Collection::Build({"Exact Original Text"}, tok);
  EXPECT_EQ(c.text(0), "Exact Original Text");
}

TEST(CollectionTest, AverageSetSize) {
  Tokenizer tok(TokenizerOptions{.kind = TokenizerKind::kWord});
  Collection c = Collection::Build({"a b", "a b c d"}, tok);
  EXPECT_DOUBLE_EQ(c.average_set_size(), 3.0);
}

TEST(CollectionTest, EmptyCollection) {
  Tokenizer tok;
  Collection c = Collection::Build({}, tok);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_DOUBLE_EQ(c.average_set_size(), 0.0);
}

TEST(CollectionTest, EmptyRecordYieldsEmptySet) {
  Tokenizer tok;
  Collection c = Collection::Build({"", "word"}, tok);
  EXPECT_TRUE(c.set(0).tokens.empty());
  EXPECT_FALSE(c.set(1).tokens.empty());
}

TEST(CollectionTest, SizeAccountersPositive) {
  Tokenizer tok;
  Collection c = Collection::Build({"hello", "world"}, tok);
  EXPECT_GT(c.BaseTableBytes(), 0u);
  EXPECT_GT(c.TokenizedBytes(), 0u);
}

}  // namespace
}  // namespace simsel
