#include <gtest/gtest.h>

#include "core/dynamic.h"
#include "test_util.h"

namespace simsel {
namespace {

std::vector<std::string> BaseRecords() {
  return testing_util::MakeWordRecords(150, /*seed=*/701);
}

TEST(DynamicSelectorTest, FindsDeltaRecords) {
  DynamicSelector dyn(BaseRecords());
  SetId id = dyn.AddRecord(dyn.text(3));  // duplicate of an existing record
  EXPECT_EQ(dyn.delta_size(), 1u);
  QueryResult r = dyn.Select(dyn.text(3), 0.99);
  bool found_main = false, found_delta = false;
  for (const Match& m : r.matches) {
    found_main |= (m.id == 3);
    found_delta |= (m.id == id);
  }
  EXPECT_TRUE(found_main);
  EXPECT_TRUE(found_delta);
}

TEST(DynamicSelectorTest, DeltaScoresComparableToMain) {
  DynamicSelector dyn(BaseRecords());
  SetId id = dyn.AddRecord(dyn.text(7));
  QueryResult r = dyn.Select(dyn.text(7), 0.9);
  double main_score = -1, delta_score = -1;
  for (const Match& m : r.matches) {
    if (m.id == 7) main_score = m.score;
    if (m.id == id) delta_score = m.score;
  }
  ASSERT_GE(main_score, 0.0);
  ASSERT_GE(delta_score, 0.0);
  // Same record, same frozen statistics: identical score up to the float
  // storage of the two lengths.
  EXPECT_NEAR(main_score, delta_score, 1e-5);
}

TEST(DynamicSelectorTest, IdsAreStableAcrossRebuild) {
  DynamicSelector dyn(BaseRecords());
  std::string novel = "zyzzyva quixotic";
  SetId id = dyn.AddRecord(novel);
  EXPECT_EQ(dyn.text(id), novel);
  dyn.Rebuild();
  EXPECT_EQ(dyn.delta_size(), 0u);
  EXPECT_EQ(dyn.text(id), novel);
  QueryResult r = dyn.Select(novel, 0.9);
  ASSERT_FALSE(r.matches.empty());
  EXPECT_EQ(r.matches.back().id, id);
}

TEST(DynamicSelectorTest, RebuildEqualsFreshBuild) {
  std::vector<std::string> base = BaseRecords();
  DynamicSelector dyn(base);
  std::vector<std::string> extra =
      testing_util::MakeWordRecords(30, /*seed=*/703);
  std::vector<std::string> all = base;
  for (const std::string& rec : extra) {
    dyn.AddRecord(rec);
    all.push_back(rec);
  }
  dyn.Rebuild();
  SimilaritySelector fresh = SimilaritySelector::Build(all);
  for (size_t i = 0; i < 10; ++i) {
    const std::string& query = all[i * 13];
    QueryResult a = dyn.Select(query, 0.7);
    QueryResult b = fresh.Select(query, 0.7);
    testing_util::ExpectSameMatches(b.matches, a.matches, query);
  }
}

TEST(DynamicSelectorTest, UnknownTokensOnlyInDelta) {
  DynamicSelector dyn(BaseRecords());
  // A record of tokens the frozen dictionary has never seen: it can only
  // be found once Rebuild folds it in.
  SetId id = dyn.AddRecord("0192837465 5647382910");
  QueryResult before = dyn.Select("0192837465 5647382910", 0.5);
  EXPECT_TRUE(before.matches.empty());
  dyn.Rebuild();
  QueryResult after = dyn.Select("0192837465 5647382910", 0.5);
  ASSERT_FALSE(after.matches.empty());
  EXPECT_EQ(after.matches[0].id, id);
}

TEST(DynamicSelectorTest, ManyDeltasStillExact) {
  std::vector<std::string> base = BaseRecords();
  DynamicSelector dyn(base);
  Rng rng(17);
  for (int i = 0; i < 60; ++i) {
    dyn.AddRecord(ApplyModifications(base[rng.NextBounded(base.size())], 1,
                                     &rng));
  }
  EXPECT_EQ(dyn.size(), base.size() + 60);
  // Every query finds at least its main-segment self match (the corpus has
  // duplicate words, so the self id need not be the first match).
  for (size_t i = 0; i < 10; ++i) {
    QueryResult r = dyn.Select(base[i], 0.99);
    ASSERT_FALSE(r.matches.empty());
    bool found_self = false;
    for (const Match& m : r.matches) found_self |= (m.id == i);
    EXPECT_TRUE(found_self) << base[i];
    // Results sorted by id, delta ids after main ids.
    for (size_t j = 1; j < r.matches.size(); ++j) {
      EXPECT_LT(r.matches[j - 1].id, r.matches[j].id);
    }
  }
}

TEST(DynamicSelectorTest, DeltaCountsChargedToRowsScanned) {
  DynamicSelector dyn(BaseRecords());
  for (int i = 0; i < 5; ++i) dyn.AddRecord("some new record");
  QueryResult r = dyn.Select(dyn.text(0), 0.8);
  EXPECT_GE(r.counters.rows_scanned, 5u);
}

}  // namespace
}  // namespace simsel
