#include <gtest/gtest.h>

#include <cstring>

#include "core/dynamic.h"
#include "storage/fault_injector.h"
#include "storage/posting_store.h"
#include "test_util.h"

namespace simsel {
namespace {

std::vector<std::string> BaseRecords() {
  return testing_util::MakeWordRecords(150, /*seed=*/701);
}

TEST(DynamicSelectorTest, FindsDeltaRecords) {
  DynamicSelector dyn(BaseRecords());
  SetId id = dyn.AddRecord(dyn.text(3));  // duplicate of an existing record
  EXPECT_EQ(dyn.delta_size(), 1u);
  QueryResult r = dyn.Select(dyn.text(3), 0.99);
  bool found_main = false, found_delta = false;
  for (const Match& m : r.matches) {
    found_main |= (m.id == 3);
    found_delta |= (m.id == id);
  }
  EXPECT_TRUE(found_main);
  EXPECT_TRUE(found_delta);
}

TEST(DynamicSelectorTest, DeltaScoresComparableToMain) {
  DynamicSelector dyn(BaseRecords());
  SetId id = dyn.AddRecord(dyn.text(7));
  QueryResult r = dyn.Select(dyn.text(7), 0.9);
  double main_score = -1, delta_score = -1;
  for (const Match& m : r.matches) {
    if (m.id == 7) main_score = m.score;
    if (m.id == id) delta_score = m.score;
  }
  ASSERT_GE(main_score, 0.0);
  ASSERT_GE(delta_score, 0.0);
  // Same record, same frozen statistics: identical score up to the float
  // storage of the two lengths.
  EXPECT_NEAR(main_score, delta_score, 1e-5);
}

TEST(DynamicSelectorTest, IdsAreStableAcrossRebuild) {
  DynamicSelector dyn(BaseRecords());
  std::string novel = "zyzzyva quixotic";
  SetId id = dyn.AddRecord(novel);
  EXPECT_EQ(dyn.text(id), novel);
  dyn.Rebuild();
  EXPECT_EQ(dyn.delta_size(), 0u);
  EXPECT_EQ(dyn.text(id), novel);
  QueryResult r = dyn.Select(novel, 0.9);
  ASSERT_FALSE(r.matches.empty());
  EXPECT_EQ(r.matches.back().id, id);
}

TEST(DynamicSelectorTest, RebuildEqualsFreshBuild) {
  std::vector<std::string> base = BaseRecords();
  DynamicSelector dyn(base);
  std::vector<std::string> extra =
      testing_util::MakeWordRecords(30, /*seed=*/703);
  std::vector<std::string> all = base;
  for (const std::string& rec : extra) {
    dyn.AddRecord(rec);
    all.push_back(rec);
  }
  dyn.Rebuild();
  SimilaritySelector fresh = SimilaritySelector::Build(all);
  for (size_t i = 0; i < 10; ++i) {
    const std::string& query = all[i * 13];
    QueryResult a = dyn.Select(query, 0.7);
    QueryResult b = fresh.Select(query, 0.7);
    testing_util::ExpectSameMatches(b.matches, a.matches, query);
  }
}

TEST(DynamicSelectorTest, UnknownTokensOnlyInDelta) {
  DynamicSelector dyn(BaseRecords());
  // A record of tokens the frozen dictionary has never seen: it can only
  // be found once Rebuild folds it in.
  SetId id = dyn.AddRecord("0192837465 5647382910");
  QueryResult before = dyn.Select("0192837465 5647382910", 0.5);
  EXPECT_TRUE(before.matches.empty());
  dyn.Rebuild();
  QueryResult after = dyn.Select("0192837465 5647382910", 0.5);
  ASSERT_FALSE(after.matches.empty());
  EXPECT_EQ(after.matches[0].id, id);
}

TEST(DynamicSelectorTest, ManyDeltasStillExact) {
  std::vector<std::string> base = BaseRecords();
  DynamicSelector dyn(base);
  Rng rng(17);
  for (int i = 0; i < 60; ++i) {
    dyn.AddRecord(ApplyModifications(base[rng.NextBounded(base.size())], 1,
                                     &rng));
  }
  EXPECT_EQ(dyn.size(), base.size() + 60);
  // Every query finds at least its main-segment self match (the corpus has
  // duplicate words, so the self id need not be the first match).
  for (size_t i = 0; i < 10; ++i) {
    QueryResult r = dyn.Select(base[i], 0.99);
    ASSERT_FALSE(r.matches.empty());
    bool found_self = false;
    for (const Match& m : r.matches) found_self |= (m.id == i);
    EXPECT_TRUE(found_self) << base[i];
    // Results sorted by id, delta ids after main ids.
    for (size_t j = 1; j < r.matches.size(); ++j) {
      EXPECT_LT(r.matches[j - 1].id, r.matches[j].id);
    }
  }
}

TEST(DynamicSelectorTest, DeltaCandidatesChargedToCounters) {
  DynamicSelector dyn(BaseRecords());
  // Records sharing the query's tokens: the delta's per-token index gathers
  // them as candidates, charging postings to elements_read and verified
  // candidates to rows_scanned.
  for (int i = 0; i < 5; ++i) dyn.AddRecord(dyn.text(0));
  QueryResult r = dyn.Select(dyn.text(0), 0.8);
  EXPECT_GE(r.counters.rows_scanned, 5u);
  EXPECT_GE(r.counters.elements_read, 5u);
}

TEST(DynamicSelectorTest, DeltaIndexSkipsDisjointRecords) {
  DynamicSelector dyn(BaseRecords());
  QueryResult before = dyn.Select(dyn.text(0), 0.8);
  // Token-disjoint inserts: with the per-token delta index (PR 8, replacing
  // the exhaustive scan) they are never gathered, so the query does exactly
  // the same work as with an empty delta.
  for (int i = 0; i < 50; ++i) dyn.AddRecord("0192837465");
  QueryResult after = dyn.Select(dyn.text(0), 0.8);
  EXPECT_EQ(after.counters.rows_scanned, before.counters.rows_scanned);
  EXPECT_EQ(after.counters.elements_read, before.counters.elements_read);
  testing_util::ExpectSameMatches(before.matches, after.matches, "disjoint");
}

TEST(DynamicSelectorTest, RepeatedTokensScoreBitIdenticalToMain) {
  // Satellite regression (PR 8): a record with repeated tokens must score
  // bit-identically in the delta and in the main segment under the same
  // frozen statistics. Two ingredients: the IDF measure is set-semantic
  // (TokenCount::count is deliberately dropped from the weights — a
  // repeated token contributes once, before and after Rebuild alike), and
  // Analyze must accumulate the frozen length in ascending-TokenId order,
  // IdfMeasure's summation order (the old code summed in token-string
  // order, which differs once tokens repeat or interleave).
  std::vector<std::string> base = BaseRecords();
  const std::string repeated = "tortoise tortoise tortoise shell";
  base.push_back(repeated);
  const SetId main_id = static_cast<SetId>(base.size() - 1);
  DynamicSelector dyn(base);
  SetId delta_id = dyn.AddRecord(repeated);
  QueryResult r = dyn.Select(repeated, 0.5);
  double main_score = -1.0, delta_score = -1.0;
  for (const Match& m : r.matches) {
    if (m.id == main_id) main_score = m.score;
    if (m.id == delta_id) delta_score = m.score;
  }
  ASSERT_GT(main_score, 0.0);
  ASSERT_GT(delta_score, 0.0);
  EXPECT_EQ(0, std::memcmp(&main_score, &delta_score, sizeof(double)))
      << "main=" << main_score << " delta=" << delta_score;
  // And the frozen-delta score survives a Rebuild unchanged for this
  // record: the duplicate pair keeps identical (refreshed) statistics.
  dyn.Rebuild();
  QueryResult rebuilt = dyn.Select(repeated, 0.5);
  double a = -1.0, b = -1.0;
  for (const Match& m : rebuilt.matches) {
    if (m.id == main_id) a = m.score;
    if (m.id == delta_id) b = m.score;
  }
  ASSERT_GT(a, 0.0);
  ASSERT_GT(b, 0.0);
  EXPECT_EQ(0, std::memcmp(&a, &b, sizeof(double)));
}

TEST(DynamicSelectorTest, BudgetTripsInsideDeltaScan) {
  DynamicSelector dyn(BaseRecords());
  const std::string query = dyn.text(0);
  QueryResult main_only = dyn.Select(query, 0.8);
  ASSERT_TRUE(main_only.complete());
  uint64_t main_work =
      main_only.counters.elements_read + main_only.counters.rows_scanned;
  for (int i = 0; i < 100; ++i) dyn.AddRecord(query);
  QueryResult full = dyn.Select(query, 0.8);
  ASSERT_TRUE(full.complete());
  EXPECT_TRUE(full.delta_covered);

  // A budget that covers the main segment but not the delta postings: the
  // poller (PR 8 — the delta scan used to ignore SelectOptions::control
  // entirely) trips inside the delta pass.
  SelectOptions options;
  options.control.max_elements_read = main_work + 10;
  QueryResult tripped = dyn.Select(query, 0.8, AlgorithmKind::kSf, options);
  ASSERT_TRUE(tripped.status.ok());
  EXPECT_EQ(tripped.termination, Termination::kBudget);
  EXPECT_FALSE(tripped.delta_covered);
  EXPECT_FALSE(tripped.complete());
  // Sound partial: every reported match appears in the complete answer
  // with a bit-identical score.
  for (const Match& m : tripped.matches) {
    bool found = false;
    for (const Match& f : full.matches) {
      if (f.id == m.id) {
        found = true;
        EXPECT_EQ(0, std::memcmp(&f.score, &m.score, sizeof(double)));
      }
    }
    EXPECT_TRUE(found) << "spurious match id " << m.id;
  }
}

TEST(DynamicSelectorTest, TrippedMainSkipsDelta) {
  DynamicSelector dyn(BaseRecords());
  const std::string query = dyn.text(0);
  SetId delta_id = dyn.AddRecord(query);
  SelectOptions options;
  options.control.deadline = QueryControl::Clock::now();  // already expired
  QueryResult r = dyn.Select(query, 0.8, AlgorithmKind::kSf, options);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.termination, Termination::kDeadline);
  // The delta holds a perfect match, but a tripped main must not have its
  // partial padded with delta matches (PR 8 fix): the miss is recorded in
  // delta_covered instead.
  EXPECT_FALSE(r.delta_covered);
  for (const Match& m : r.matches) EXPECT_NE(m.id, delta_id);
}

TEST(DynamicSelectorTest, FailedMainShortCircuitsDelta) {
  DynamicSelector dyn(BaseRecords());
  const std::string query = dyn.text(0);
  dyn.AddRecord(query);  // a delta record that would match
  // Memory-mode selector, caller-supplied disk binding for the main
  // segment (valid while the snapshot's segment is current), with every
  // read failing.
  DynamicSelector::Snapshot snap = dyn.snapshot();
  PostingStore store = PostingStore::Build(snap.main().index());
  FaultInjector injector;
  store.set_fault_injector(&injector);
  injector.FailNextReads(1'000'000);
  SelectOptions options;
  options.posting_store = &store;
  // The sketch tier reads no posting pages, so an engaged query would
  // (correctly) dodge the injected faults; pin it off to exercise the
  // kernel failure path this test is about.
  options.prefilter = false;
  QueryResult r = snap.Select(query, 0.8, AlgorithmKind::kSf, options);
  EXPECT_FALSE(r.status.ok());
  // PR 8 fix: the old code appended delta matches to a failed result,
  // making it look fuller than its status admits.
  EXPECT_TRUE(r.matches.empty());
  EXPECT_EQ(r.counters.results, 0u);
  EXPECT_FALSE(r.delta_covered);
}

TEST(DynamicSelectorTest, SnapshotIsolation) {
  DynamicSelector dyn(BaseRecords());
  DynamicSelector::Snapshot snap = dyn.snapshot();
  uint64_t v0 = snap.version();
  SetId id = dyn.AddRecord(dyn.text(3));
  // The pinned snapshot still sees the pre-insert cut...
  EXPECT_EQ(snap.version(), v0);
  EXPECT_EQ(snap.size(), BaseRecords().size());
  QueryResult old_cut = snap.Select(dyn.text(3), 0.99);
  for (const Match& m : old_cut.matches) EXPECT_NE(m.id, id);
  // ...while fresh reads see the insert.
  EXPECT_EQ(dyn.version(), v0 + 1);
  QueryResult new_cut = dyn.Select(dyn.text(3), 0.99);
  bool found = false;
  for (const Match& m : new_cut.matches) found |= (m.id == id);
  EXPECT_TRUE(found);
  EXPECT_EQ(new_cut.snapshot_version, v0 + 1);
  EXPECT_EQ(old_cut.snapshot_version, v0);
}

TEST(DynamicSelectorTest, VersionMonotoneAcrossRebuild) {
  DynamicSelector dyn(BaseRecords());
  uint64_t v = dyn.version();
  EXPECT_EQ(v, 0u);
  dyn.AddRecord(dyn.text(1));
  dyn.AddRecord(dyn.text(2));
  EXPECT_EQ(dyn.version(), v + 2);
  dyn.Rebuild();
  EXPECT_EQ(dyn.version(), v + 3);  // the rebuild is one content change
  dyn.AddRecord(dyn.text(3));
  EXPECT_EQ(dyn.version(), v + 4);
  dyn.Rebuild();
  EXPECT_EQ(dyn.version(), v + 5);
}

TEST(DynamicSelectorTest, DiskModeMatchesMemoryMode) {
  std::vector<std::string> base = BaseRecords();
  DynamicSelector mem(base);
  DynamicSelector::Options options;
  options.disk_mode = true;
  DynamicSelector disk(base, options);
  for (int i = 0; i < 10; ++i) {
    mem.AddRecord(base[i * 3]);
    disk.AddRecord(base[i * 3]);
  }
  for (size_t i = 0; i < 6; ++i) {
    QueryResult a = mem.Select(base[i * 7], 0.7);
    QueryResult b = disk.Select(base[i * 7], 0.7);
    testing_util::ExpectSameMatches(a.matches, b.matches, base[i * 7]);
  }
  disk.Rebuild();
  mem.Rebuild();
  for (size_t i = 0; i < 6; ++i) {
    QueryResult a = mem.Select(base[i * 7], 0.7);
    QueryResult b = disk.Select(base[i * 7], 0.7);
    testing_util::ExpectSameMatches(a.matches, b.matches, base[i * 7]);
  }
}

}  // namespace
}  // namespace simsel
