#include <gtest/gtest.h>

#include "core/prefix_filter.h"
#include "test_util.h"

namespace simsel {
namespace {

using testing_util::MakeSelector;

const SimilaritySelector& Selector() {
  static const SimilaritySelector* selector =
      new SimilaritySelector(MakeSelector(400, /*seed=*/221, false));
  return *selector;
}

TEST(PrefixFilterTest, HighThresholdOpensFewerLists) {
  // At high tau the prefix is a strict subset of the query tokens, so whole
  // suffix lists are skipped; at tau -> 0 the prefix approaches the full
  // query.
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(12));
  ASSERT_GE(q.tokens.size(), 4u);
  QueryResult high = PrefixFilterSelect(sel.index(), sel.measure(), q, 0.95,
                                        {});
  QueryResult low = PrefixFilterSelect(sel.index(), sel.measure(), q, 0.3, {});
  EXPECT_GT(high.counters.elements_skipped, 0u);
  EXPECT_LE(high.counters.elements_read, low.counters.elements_read);
}

TEST(PrefixFilterTest, VerificationCountsRows) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(5));
  QueryResult r = PrefixFilterSelect(sel.index(), sel.measure(), q, 0.8, {});
  // Every candidate was verified exactly once.
  EXPECT_EQ(r.counters.rows_scanned, r.counters.candidate_inserts);
  EXPECT_EQ(r.counters.rows_scanned,
            r.counters.results + r.counters.candidate_prunes);
}

TEST(PrefixFilterTest, DegeneratesWithoutLengthBounding) {
  // Normalized measures admit no suffix bound without Theorem 1: the prefix
  // must be the whole query.
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(5));
  SelectOptions nlb;
  nlb.length_bounding = false;
  QueryResult r = PrefixFilterSelect(sel.index(), sel.measure(), q, 0.8, nlb);
  // All lists opened and fully read: nothing skipped except nothing.
  EXPECT_EQ(r.counters.elements_read, r.counters.elements_total);
}

TEST(PrefixFilterTest, ImpossibleThresholdShortCircuits) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(5));
  QueryResult r = PrefixFilterSelect(sel.index(), sel.measure(), q, 1.5, {});
  EXPECT_TRUE(r.matches.empty());
  // Total weight < tau^2 len(q)^2: the prefix is empty, no list is opened.
  EXPECT_EQ(r.counters.elements_read, 0u);
}

}  // namespace
}  // namespace simsel
