#include <gtest/gtest.h>

#include <cmath>

#include "sim/bm25.h"
#include "sim/idf.h"
#include "sim/measure.h"
#include "sim/setops.h"
#include "sim/tfidf.h"
#include "test_util.h"

namespace simsel {
namespace {

// Randomized property tests over the whole measure family.

struct Env {
  Env() : tokenizer(TokenizerOptions{.q = 3}) {
    CorpusOptions co;
    co.num_records = 200;
    co.vocab_size = 80;
    co.min_words = 1;
    co.max_words = 3;
    co.seed = 811;
    records = GenerateCorpus(co).records;
    collection =
        std::make_unique<Collection>(Collection::Build(records, tokenizer));
  }

  Tokenizer tokenizer;
  std::vector<std::string> records;
  std::unique_ptr<Collection> collection;
};

const Env& E() {
  static const Env* env = new Env();
  return *env;
}

class MeasureFamily : public ::testing::TestWithParam<MeasureKind> {};

TEST_P(MeasureFamily, NonNegativeScores) {
  const Env& e = E();
  auto measure = MakeMeasure(GetParam(), *e.collection);
  for (size_t r = 0; r < 20; ++r) {
    PreparedQuery q = measure->PrepareQuery(
        e.tokenizer.TokenizeCounted(e.records[r * 7]));
    for (SetId s = 0; s < e.collection->size(); s += 11) {
      EXPECT_GE(measure->Score(q, s), 0.0);
    }
  }
}

TEST_P(MeasureFamily, SelfIsBestOrTied) {
  // A record's own set must score at least as high as any other set for
  // the normalized measures, and at least tie for BM25 (its score grows
  // with overlap mass, and nothing overlaps q more than itself... except
  // longer supersets, which BM25 does not normalize away — so restrict the
  // check to the normalized measures).
  MeasureKind kind = GetParam();
  if (kind == MeasureKind::kBm25 || kind == MeasureKind::kBm25Prime) {
    GTEST_SKIP();
  }
  const Env& e = E();
  auto measure = MakeMeasure(kind, *e.collection);
  for (size_t r = 0; r < 15; ++r) {
    SetId self = static_cast<SetId>(r * 5);
    PreparedQuery q = measure->PrepareQuery(
        e.tokenizer.TokenizeCounted(e.records[self]));
    double self_score = measure->Score(q, self);
    for (SetId s = 0; s < e.collection->size(); s += 7) {
      EXPECT_LE(measure->Score(q, s), self_score + 1e-6)
          << "query " << self << " vs " << s;
    }
  }
}

TEST_P(MeasureFamily, MonotoneUnderQueryCorruption) {
  // Pooled over many trials: corrupting the query should not raise the
  // average similarity to the original record.
  const Env& e = E();
  auto measure = MakeMeasure(GetParam(), *e.collection);
  Rng rng(99);
  double clean_total = 0, dirty_total = 0;
  for (size_t r = 0; r < 40; ++r) {
    SetId target = static_cast<SetId>(r * 3);
    const std::string& text = e.records[target];
    PreparedQuery clean =
        measure->PrepareQuery(e.tokenizer.TokenizeCounted(text));
    PreparedQuery dirty = measure->PrepareQuery(e.tokenizer.TokenizeCounted(
        ApplyModifications(text, 3, &rng)));
    clean_total += measure->Score(clean, target);
    dirty_total += measure->Score(dirty, target);
  }
  EXPECT_GT(clean_total, dirty_total);
}

INSTANTIATE_TEST_SUITE_P(
    AllMeasures, MeasureFamily,
    ::testing::Values(MeasureKind::kIdf, MeasureKind::kTfIdf,
                      MeasureKind::kBm25, MeasureKind::kBm25Prime),
    [](const auto& info) {
      switch (info.param) {
        case MeasureKind::kIdf:
          return std::string("IDF");
        case MeasureKind::kTfIdf:
          return std::string("TFIDF");
        case MeasureKind::kBm25:
          return std::string("BM25");
        case MeasureKind::kBm25Prime:
          return std::string("BM25prime");
      }
      return std::string("unknown");
    });

TEST(IdfPropertyTest, IdfDecreasesWithDocumentFrequency) {
  const Env& e = E();
  IdfMeasure idf(*e.collection);
  const Dictionary& dict = e.collection->dictionary();
  for (TokenId a = 0; a < dict.size(); a += 13) {
    for (TokenId b = 0; b < dict.size(); b += 17) {
      if (dict.df(a) < dict.df(b)) {
        EXPECT_GT(idf.idf(a), idf.idf(b));
      } else if (dict.df(a) == dict.df(b)) {
        EXPECT_DOUBLE_EQ(idf.idf(a), idf.idf(b));
      }
    }
  }
}

TEST(IdfPropertyTest, LengthIsMonotoneUnderTokenAddition) {
  // Adding a token to a set can only grow its normalized length.
  Tokenizer tok(TokenizerOptions{.kind = TokenizerKind::kWord});
  Collection c = Collection::Build({"a b", "a b c", "a b c d"}, tok);
  IdfMeasure idf(c);
  EXPECT_LT(idf.set_length(0), idf.set_length(1));
  EXPECT_LT(idf.set_length(1), idf.set_length(2));
}

TEST(IdfPropertyTest, ScoreSymmetryBetweenIndexedPair) {
  // I(q, s) is symmetric in its arguments when both live in the database
  // (same idfs, same lengths up to float storage).
  const Env& e = E();
  IdfMeasure idf(*e.collection);
  for (size_t i = 0; i < 10; ++i) {
    SetId a = static_cast<SetId>(i * 11);
    SetId b = static_cast<SetId>(i * 7 + 3);
    PreparedQuery qa = idf.PrepareQuery(
        e.tokenizer.TokenizeCounted(e.records[a]));
    PreparedQuery qb = idf.PrepareQuery(
        e.tokenizer.TokenizeCounted(e.records[b]));
    EXPECT_NEAR(idf.Score(qa, b), idf.Score(qb, a), 1e-5);
  }
}

TEST(IdfPropertyTest, TriangleOfOverlap) {
  // Score strictly increases as more query tokens are present: verified by
  // deleting tokens from a query.
  Tokenizer tok(TokenizerOptions{.kind = TokenizerKind::kWord});
  Collection c = Collection::Build({"w x y z"}, tok);
  IdfMeasure idf(c);
  double prev = -1;
  for (const char* text : {"w", "w x", "w x y", "w x y z"}) {
    PreparedQuery q = idf.PrepareQuery(tok.TokenizeCounted(text));
    double score = idf.Score(q, 0);
    EXPECT_GT(score, prev);
    prev = score;
  }
  EXPECT_NEAR(prev, 1.0, 1e-5);
}

TEST(SetOpsPropertyTest, CoefficientOrderings) {
  // For any pair: overlap >= cosine >= dice >= jaccard (AM-GM gives
  // cosine >= dice; min <= geometric mean gives overlap >= cosine).
  const Env& e = E();
  SetOverlapMeasure jac(*e.collection, SetOverlapKind::kJaccard);
  SetOverlapMeasure dice(*e.collection, SetOverlapKind::kDice);
  SetOverlapMeasure cos(*e.collection, SetOverlapKind::kCosine);
  SetOverlapMeasure ovl(*e.collection, SetOverlapKind::kOverlap);
  for (size_t r = 0; r < 20; ++r) {
    PreparedQuery qj = jac.PrepareQuery(
        e.tokenizer.TokenizeCounted(e.records[r * 2]));
    PreparedQuery qd = dice.PrepareQuery(
        e.tokenizer.TokenizeCounted(e.records[r * 2]));
    PreparedQuery qc = cos.PrepareQuery(
        e.tokenizer.TokenizeCounted(e.records[r * 2]));
    PreparedQuery qo = ovl.PrepareQuery(
        e.tokenizer.TokenizeCounted(e.records[r * 2]));
    for (SetId s = 0; s < e.collection->size(); s += 13) {
      double j = jac.Score(qj, s), d = dice.Score(qd, s),
             c2 = cos.Score(qc, s), o = ovl.Score(qo, s);
      EXPECT_GE(o + 1e-12, c2);
      EXPECT_GE(c2 + 1e-12, d);
      EXPECT_GE(d + 1e-12, j);
    }
  }
}

}  // namespace
}  // namespace simsel
