#include <gtest/gtest.h>

#include "eval/precision.h"
#include "gen/corpus.h"
#include "sim/measure.h"

namespace simsel {
namespace {

TEST(AveragePrecisionTest, PerfectRanking) {
  std::vector<uint32_t> ranked = {1, 2, 3, 4, 5};
  std::unordered_set<uint32_t> relevant = {1, 2};
  EXPECT_DOUBLE_EQ(AveragePrecision(ranked, relevant), 1.0);
}

TEST(AveragePrecisionTest, WorstRanking) {
  std::vector<uint32_t> ranked = {3, 4, 5};
  std::unordered_set<uint32_t> relevant = {1, 2};
  EXPECT_DOUBLE_EQ(AveragePrecision(ranked, relevant), 0.0);
}

TEST(AveragePrecisionTest, InterleavedRanking) {
  // Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
  std::vector<uint32_t> ranked = {1, 9, 2};
  std::unordered_set<uint32_t> relevant = {1, 2};
  EXPECT_NEAR(AveragePrecision(ranked, relevant), (1.0 + 2.0 / 3.0) / 2, 1e-12);
}

TEST(AveragePrecisionTest, MissingRelevantPenalized) {
  std::vector<uint32_t> ranked = {1};
  std::unordered_set<uint32_t> relevant = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(AveragePrecision(ranked, relevant), 0.25);
}

TEST(AveragePrecisionTest, EmptyRelevant) {
  EXPECT_DOUBLE_EQ(AveragePrecision({1, 2}, {}), 0.0);
}

class PrecisionExperiment : public ::testing::Test {
 protected:
  static LabeledDataset MakeDataset(int level) {
    CorpusOptions co;
    co.num_records = 150;
    co.vocab_size = 300;
    co.min_words = 2;
    co.max_words = 3;
    co.seed = 7;
    Corpus corpus = GenerateCorpus(co);
    DirtyDatasetOptions dso;
    dso.level = level;
    dso.num_clean = 150;
    dso.duplicates_per_record = 3;
    return MakeDirtyDataset(corpus.records, dso);
  }

  static double Map(const LabeledDataset& ds, int level, MeasureKind kind) {
    Tokenizer tok(TokenizerOptions{.q = 3});
    Collection coll = Collection::Build(ds.records, tok);
    auto measure = MakeMeasure(kind, coll);
    PrecisionExperimentOptions opts;
    opts.num_queries = 30;
    return MeanAveragePrecision(ds, level, coll, *measure, tok, opts);
  }
};

TEST_F(PrecisionExperiment, CleanDataScoresHigh) {
  LabeledDataset ds = MakeDataset(8);
  double map = Map(ds, 8, MeasureKind::kIdf);
  EXPECT_GT(map, 0.8);
  EXPECT_LE(map, 1.0 + 1e-9);
}

TEST_F(PrecisionExperiment, DirtierDataScoresLower) {
  LabeledDataset clean = MakeDataset(8);
  LabeledDataset dirty = MakeDataset(1);
  EXPECT_GT(Map(clean, 8, MeasureKind::kIdf), Map(dirty, 1, MeasureKind::kIdf));
}

TEST_F(PrecisionExperiment, IdfTracksTfIdf) {
  // Table I's claim: dropping the tf component does not hurt precision.
  LabeledDataset ds = MakeDataset(4);
  double idf = Map(ds, 4, MeasureKind::kIdf);
  double tfidf = Map(ds, 4, MeasureKind::kTfIdf);
  EXPECT_NEAR(idf, tfidf, 0.05);
}

TEST_F(PrecisionExperiment, Bm25PrimeTracksBm25) {
  LabeledDataset ds = MakeDataset(4);
  double bm25 = Map(ds, 4, MeasureKind::kBm25);
  double prime = Map(ds, 4, MeasureKind::kBm25Prime);
  EXPECT_NEAR(bm25, prime, 0.05);
}

}  // namespace
}  // namespace simsel
