// Integration tests for the network serving front end (serve/server.h)
// against live loopback sockets, using the src/gen/load.h client. Runs
// under the TSAN `concurrency` ctest label: the interesting properties are
// cross-thread (admission accounting, drain visibility, worker/IO flush
// rendezvous), so every test here doubles as a race detector target.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "gen/load.h"
#include "serve/dynamic_serving.h"
#include "serve/server.h"
#include "serve/sharded_selector.h"
#include "test_util.h"

namespace simsel {
namespace {

using load::Client;
using load::Response;
using serve::Server;
using serve::ServerOptions;
using serve::ShardedSelector;
using serve::ShardedSelectorOptions;
using testing_util::MakeQueries;
using testing_util::MakeWordRecords;

ShardedSelectorOptions SmallServe(size_t shards) {
  ShardedSelectorOptions o;
  o.num_shards = shards;
  o.build.tokenizer.q = 3;
  o.build.index.page_bytes = 512;
  o.build.index.skip_fanout = 8;
  o.build.index.hash_page_bytes = 256;
  return o;
}

Response RoundTrip(Client* client, const std::string& line) {
  EXPECT_TRUE(client->SendLine(line).ok());
  std::string reply;
  EXPECT_TRUE(client->ReadLine(&reply).ok());
  Response r;
  EXPECT_TRUE(load::ParseResponse(reply, &r)) << reply;
  return r;
}

// The wire answer must be the direct in-process answer, byte for byte:
// same ids in the same order, and scores whose parsed doubles are
// bit-identical to the server-side doubles (%.17g round-trip).
TEST(ServerTest, ResultsAreByteIdenticalToDirectSelector) {
  std::vector<std::string> records = MakeWordRecords(120, 7);
  ShardedSelector sharded = ShardedSelector::Build(records, SmallServe(3));
  Server server(&sharded, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  std::vector<std::string> queries = MakeQueries(records, 8, 99);
  int checked = 0;
  for (AlgorithmKind kind :
       {AlgorithmKind::kSf, AlgorithmKind::kInra, AlgorithmKind::kHybrid}) {
    for (const std::string& q : queries) {
      for (double tau : {0.5, 0.8}) {
        QueryResult direct = sharded.Select(q, tau, kind);
        Response r = RoundTrip(
            &client, load::FormatQuery("q", "-", tau, kind, q));
        ASSERT_EQ(r.kind, Response::Kind::kOk) << r.reason;
        EXPECT_EQ(r.version, sharded.epoch());
        ASSERT_EQ(r.matches.size(), direct.matches.size());
        for (size_t i = 0; i < r.matches.size(); ++i) {
          EXPECT_EQ(r.matches[i].id, direct.matches[i].id);
          // Exact double equality on purpose: %.17g makes the round trip
          // lossless, so any difference is a serving-path bug.
          EXPECT_EQ(r.matches[i].score, direct.matches[i].score);
        }
        ++checked;
      }
    }
  }
  EXPECT_EQ(checked, 3 * 8 * 2);
  Response pong = RoundTrip(&client, "p PING");
  EXPECT_EQ(pong.kind, Response::Kind::kPong);
  client.Close();
  server.Shutdown();
  EXPECT_EQ(server.error_count(), 0u);
  EXPECT_EQ(server.queue_depth(), 0u);
}

TEST(ServerTest, TenantBudgetsYieldPartialWithBudgetReason) {
  std::vector<std::string> records = MakeWordRecords(150, 21);
  ShardedSelector sharded = ShardedSelector::Build(records, SmallServe(2));
  ServerOptions so;
  so.tenant_budgets["metered"] = 1;  // trips on the first element read
  Server server(&sharded, so);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  std::string query = records[11];
  Response metered = RoundTrip(
      &client,
      load::FormatQuery("m", "metered", 0.5, AlgorithmKind::kSf, query));
  EXPECT_EQ(metered.kind, Response::Kind::kPartial);
  EXPECT_EQ(metered.reason, "budget");
  // The anonymous tenant has no budget and completes normally.
  Response anon = RoundTrip(
      &client, load::FormatQuery("a", "-", 0.5, AlgorithmKind::kSf, query));
  EXPECT_EQ(anon.kind, Response::Kind::kOk);
  client.Close();
  server.Shutdown();
  EXPECT_EQ(server.partial_count(), 1u);
  EXPECT_EQ(server.ok_count(), 1u);
}

TEST(ServerTest, MalformedLinesGetErrNotDisconnect) {
  std::vector<std::string> records = MakeWordRecords(40, 3);
  ShardedSelector sharded = ShardedSelector::Build(records, SmallServe(2));
  Server server(&sharded, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (const char* bad :
       {"x Q - notanumber sf hello", "y Q - 0.5 nosuchalgo hello",
        "z WHAT", "w I - insert against read-only backend"}) {
    Response r = RoundTrip(&client, bad);
    EXPECT_EQ(r.kind, Response::Kind::kError) << bad;
  }
  // The connection survives garbage: a well-formed request still works.
  Response ok = RoundTrip(
      &client,
      load::FormatQuery("k", "-", 0.5, AlgorithmKind::kSf, records[0]));
  EXPECT_EQ(ok.kind, Response::Kind::kOk);
  client.Close();
  server.Shutdown();
  EXPECT_EQ(server.error_count(), 4u);
}

// A pipelined burst far past max_queue must shed (distinct SHED status,
// counted), and every request still gets exactly one response.
TEST(ServerTest, OverloadShedsAtTheQueueBound) {
  std::vector<std::string> records = MakeWordRecords(200, 13);
  ShardedSelector sharded = ShardedSelector::Build(records, SmallServe(2));
  ServerOptions so;
  so.num_workers = 1;
  so.max_queue = 4;
  Server server(&sharded, so);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  constexpr int kBurst = 60;
  // kLinearScan is the slowest algorithm — it keeps the single worker busy
  // so the burst piles into admission instead of draining instantly.
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client
                    .SendLine(load::FormatQuery(
                        "b" + std::to_string(i), "-", 0.5,
                        AlgorithmKind::kLinearScan, records[i % 20]))
                    .ok());
  }
  uint64_t ok = 0, shed = 0, other = 0;
  for (int i = 0; i < kBurst; ++i) {
    std::string reply;
    ASSERT_TRUE(client.ReadLine(&reply).ok());
    Response r;
    ASSERT_TRUE(load::ParseResponse(reply, &r)) << reply;
    if (r.kind == Response::Kind::kShed) {
      ++shed;
    } else if (r.kind == Response::Kind::kOk) {
      ++ok;
    } else {
      ++other;
    }
  }
  EXPECT_EQ(other, 0u);
  EXPECT_EQ(ok + shed, static_cast<uint64_t>(kBurst));
  // The whole burst lands while the first queries still execute, so with
  // max_queue=4 most of it must shed.
  EXPECT_GT(shed, 0u);
  client.Close();
  server.Shutdown();
  EXPECT_EQ(server.shed_count(), shed);
  EXPECT_EQ(server.ok_count(), ok);
  EXPECT_EQ(server.queue_depth(), 0u);
}

// Graceful drain: requests pipelined before/around RequestStop all get a
// response (OK or ERR draining) before the server closes the connection —
// none vanish — and the system drains to zero depth.
TEST(ServerTest, DrainAnswersEveryInFlightRequest) {
  std::vector<std::string> records = MakeWordRecords(120, 31);
  ShardedSelector sharded = ShardedSelector::Build(records, SmallServe(2));
  ServerOptions so;
  so.num_workers = 2;
  so.max_queue = 0;  // unlimited: admission must not mask drops
  Server server(&sharded, so);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 3;
  constexpr int kPerClient = 25;
  std::atomic<int> connected{0};
  std::atomic<uint64_t> answered{0}, ok{0}, draining_errs{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
      for (int i = 0; i < kPerClient; ++i) {
        ASSERT_TRUE(client
                        .SendLine(load::FormatQuery(
                            std::to_string(t) + "-" + std::to_string(i), "-",
                            0.5, AlgorithmKind::kSf, records[(t * 7 + i) % 40]))
                        .ok());
      }
      auto consume = [&](const std::string& reply) {
        Response r;
        ASSERT_TRUE(load::ParseResponse(reply, &r)) << reply;
        answered.fetch_add(1);
        if (r.kind == Response::Kind::kOk) ok.fetch_add(1);
        if (r.kind == Response::Kind::kError) {
          EXPECT_EQ(r.reason.substr(0, 8), "draining");
          draining_errs.fetch_add(1);
        }
      };
      // Read the first response before signaling readiness: Connect()
      // completing only proves the kernel finished the handshake off the
      // listen backlog — on one core the I/O thread may not have run
      // accept4 yet, and a drain started then would close the listen socket
      // and quiesce before ever parsing this client's burst. One answered
      // line proves the server owns the connection and is mid-pipeline.
      std::string reply;
      ASSERT_TRUE(client.ReadLine(&reply).ok());
      consume(reply);
      connected.fetch_add(1);
      // The server flushes every buffered response before closing, so
      // everything it generated for this connection is readable even after
      // drain completes. Lines the drain quiesced *before parsing* (still in
      // the kernel buffer) legitimately get no response — the socket just
      // hits EOF — so read until EOF, not until kPerClient.
      for (int i = 1; i < kPerClient; ++i) {
        if (!client.ReadLine(&reply).ok()) break;
        consume(reply);
      }
    });
  }
  // Stop mid-flight — but only after every client has read one response,
  // proving its connection is accepted and its pipeline is being answered.
  // Some requests are already admitted, some still in socket buffers (those
  // get ERR draining, or no response if never parsed); if the burst happens
  // to finish first, the test still holds with zero draining errors.
  while (connected.load() < kClients) std::this_thread::yield();
  server.RequestStop();
  for (std::thread& t : threads) t.join();
  server.Join();

  // Every request the server parsed got exactly one response (admitted →
  // OK, post-drain → ERR draining), every generated response reached a
  // client before the socket closed, and the system drained to zero depth.
  EXPECT_GE(answered.load(), static_cast<uint64_t>(kClients));
  EXPECT_LE(answered.load(), static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(ok.load() + draining_errs.load(), answered.load());
  EXPECT_EQ(server.queue_depth(), 0u);
  // Tallies reconcile with what the clients saw: nothing generated was lost.
  EXPECT_EQ(server.ok_count(), ok.load());
  EXPECT_EQ(server.error_count(), draining_errs.load());
}

// Overload SLO: drive an open-loop arrival process well past capacity at a
// dynamic-backed server with a deadline. The server must shed at the bound
// and the *admitted* p99 (arrival to response, server side) must stay
// within the deadline SLO — queue wait counts against the budget, so
// nothing admitted can linger much past deadline_ms.
TEST(ServerTest, AdmittedP99StaysWithinDeadlineUnderOverload) {
  std::vector<std::string> records = MakeWordRecords(300, 17);
  ThreadPool rebuild_pool(1);
  serve::DynamicServingOptions dso;
  dso.cache_bytes = 0;  // no result cache: every query does real work
  dso.rebuild_threshold = 1u << 20;
  dso.pool = &rebuild_pool;
  serve::DynamicServing serving(records, dso);

  ServerOptions so;
  so.num_workers = 2;
  so.max_queue = 8;
  so.deadline_ms = 200;
  Server server(&serving, so);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::string> queries = MakeQueries(records, 12, 5);
  std::vector<std::string> inserts = MakeWordRecords(40, 77);
  load::LoadOptions lo;
  lo.port = server.port();
  lo.num_connections = 2;
  lo.queries = &queries;
  lo.inserts = &inserts;
  lo.insert_fraction = 0.1;
  lo.tau = 0.5;
  lo.kind = AlgorithmKind::kLinearScan;  // slow on purpose
  lo.seed = 5;

  // Measure capacity closed-loop, then offer 4x that rate open-loop.
  lo.requests_per_connection = 30;
  load::LoadStats closed = load::RunClosedLoop(lo);
  ASSERT_EQ(closed.errors, 0u);
  lo.rate_per_sec = std::max(200.0, closed.throughput_rps() * 4.0);
  lo.total_requests = 300;
  load::LoadStats open = load::RunOpenLoop(lo);
  EXPECT_EQ(open.errors, 0u);
  EXPECT_EQ(open.ok + open.partial + open.shed, open.sent);

  server.Shutdown();
  EXPECT_EQ(server.queue_depth(), 0u);
  // At 4x capacity with max_queue=8 the bound must have been hit.
  EXPECT_GT(server.shed_count(), 0u);
  // The SLO assertion proper. Slack covers scheduler jitter on a loaded
  // single-core/TSAN host: the invariant under test is "bounded by the
  // deadline, not by the queue", and an unbounded queue would blow far past
  // this at 4x overload.
  obs::HistogramSnapshot lat = server.latency_snapshot();
  ASSERT_GT(lat.count, 0u);
  const double slo_usec = static_cast<double>(so.deadline_ms) * 1000.0;
  EXPECT_LE(lat.Quantile(0.99), slo_usec + 300'000.0);
}

}  // namespace
}  // namespace simsel
