#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>

#include "storage/block_codec.h"
#include "storage/codec.h"

namespace simsel {
namespace {

Decoder MakeDecoder(const std::vector<uint8_t>& buf) {
  return Decoder{buf.data(), buf.size(), 0};
}

TEST(CodecTest, Fixed32Roundtrip) {
  std::vector<uint8_t> buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed32(&buf, std::numeric_limits<uint32_t>::max());
  Decoder dec = MakeDecoder(buf);
  uint32_t v;
  ASSERT_TRUE(GetFixed32(&dec, &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(GetFixed32(&dec, &v));
  EXPECT_EQ(v, 0xDEADBEEFu);
  ASSERT_TRUE(GetFixed32(&dec, &v));
  EXPECT_EQ(v, std::numeric_limits<uint32_t>::max());
  EXPECT_TRUE(dec.exhausted());
}

TEST(CodecTest, Fixed64Roundtrip) {
  std::vector<uint8_t> buf;
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  Decoder dec = MakeDecoder(buf);
  uint64_t v;
  ASSERT_TRUE(GetFixed64(&dec, &v));
  EXPECT_EQ(v, 0x0123456789ABCDEFULL);
}

TEST(CodecTest, VarintRoundtripBoundaries) {
  std::vector<uint64_t> values = {0,      1,        127,        128,
                                  16383,  16384,    (1u << 21) - 1,
                                  1u << 28, 0xFFFFFFFFULL,
                                  std::numeric_limits<uint64_t>::max()};
  std::vector<uint8_t> buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Decoder dec = MakeDecoder(buf);
  for (uint64_t expected : values) {
    uint64_t v;
    ASSERT_TRUE(GetVarint64(&dec, &v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(dec.exhausted());
}

TEST(CodecTest, Varint32RejectsOversized) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, 0x1'00000000ULL);  // > 32 bits
  Decoder dec = MakeDecoder(buf);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&dec, &v));
}

TEST(CodecTest, VarintSizes) {
  std::vector<uint8_t> buf;
  PutVarint32(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarint32(&buf, 128);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(CodecTest, TruncatedInputFails) {
  std::vector<uint8_t> buf;
  PutFixed64(&buf, 12345);
  buf.pop_back();
  Decoder dec = MakeDecoder(buf);
  uint64_t v;
  EXPECT_FALSE(GetFixed64(&dec, &v));
}

TEST(CodecTest, TruncatedVarintFails) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, 1u << 30);
  buf.pop_back();
  Decoder dec = MakeDecoder(buf);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&dec, &v));
}

TEST(CodecTest, OverlongVarintFails) {
  // 11 continuation bytes exceed the 64-bit budget.
  std::vector<uint8_t> buf(11, 0x80);
  Decoder dec = MakeDecoder(buf);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&dec, &v));
}

TEST(CodecTest, FloatRoundtrip) {
  std::vector<uint8_t> buf;
  PutFloat(&buf, 3.14159f);
  PutFloat(&buf, -0.0f);
  PutFloat(&buf, std::numeric_limits<float>::infinity());
  Decoder dec = MakeDecoder(buf);
  float f;
  ASSERT_TRUE(GetFloat(&dec, &f));
  EXPECT_FLOAT_EQ(f, 3.14159f);
  ASSERT_TRUE(GetFloat(&dec, &f));
  EXPECT_EQ(f, 0.0f);
  ASSERT_TRUE(GetFloat(&dec, &f));
  EXPECT_TRUE(std::isinf(f));
}

TEST(CodecTest, DoubleRoundtrip) {
  std::vector<uint8_t> buf;
  PutDouble(&buf, 2.718281828459045);
  Decoder dec = MakeDecoder(buf);
  double d;
  ASSERT_TRUE(GetDouble(&dec, &d));
  EXPECT_DOUBLE_EQ(d, 2.718281828459045);
}

TEST(CodecTest, LengthPrefixedRoundtrip) {
  std::vector<uint8_t> buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  Decoder dec = MakeDecoder(buf);
  std::string s;
  ASSERT_TRUE(GetLengthPrefixed(&dec, &s));
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&dec, &s));
  EXPECT_EQ(s, "");
  ASSERT_TRUE(GetLengthPrefixed(&dec, &s));
  EXPECT_EQ(s, std::string(1000, 'x'));
}

TEST(CodecTest, LengthPrefixedTruncatedFails) {
  std::vector<uint8_t> buf;
  PutLengthPrefixed(&buf, "hello");
  buf.resize(3);
  Decoder dec = MakeDecoder(buf);
  std::string s;
  EXPECT_FALSE(GetLengthPrefixed(&dec, &s));
}

TEST(CodecTest, FnvIsStableAndSensitive) {
  EXPECT_EQ(Fnv1a64("abc", 3), Fnv1a64("abc", 3));
  EXPECT_NE(Fnv1a64("abc", 3), Fnv1a64("abd", 3));
  EXPECT_NE(Fnv1a64(uint64_t{1}), Fnv1a64(uint64_t{2}));
}

// --- Compressed posting blocks (storage/block_codec.h). ---

uint32_t FloatToBits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

float BitsToFloat(uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

/// Encodes, decodes, and asserts a bit-exact round trip of one block.
void ExpectBlockRoundtrip(const std::vector<uint32_t>& ids,
                          const std::vector<float>& lens) {
  ASSERT_EQ(ids.size(), lens.size());
  std::vector<uint8_t> buf;
  EncodePostingBlock(ids.data(), lens.data(), ids.size(), &buf);
  std::vector<uint32_t> out_ids(ids.size());
  std::vector<float> out_lens(lens.size());
  size_t count = ~size_t{0}, consumed = 0;
  BlockDecodeScratch scratch;
  ASSERT_TRUE(DecodePostingBlock(buf.data(), buf.size(), ids.size(),
                                 out_ids.data(), out_lens.data(), &count,
                                 &consumed, &scratch));
  EXPECT_EQ(count, ids.size());
  EXPECT_EQ(consumed, buf.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(out_ids[i], ids[i]) << "i=" << i;
    ASSERT_EQ(FloatToBits(out_lens[i]), FloatToBits(lens[i])) << "i=" << i;
  }
}

TEST(BlockCodecTest, RoundtripsAdversarialBlocks) {
  ExpectBlockRoundtrip({}, {});               // empty block
  ExpectBlockRoundtrip({42}, {1.5f});         // single element
  ExpectBlockRoundtrip({7, 7, 7}, {2.f, 2.f, 2.f});  // all equal (width 0)
  // Max-magnitude deltas in both directions (ids need not be sorted).
  ExpectBlockRoundtrip({0, std::numeric_limits<uint32_t>::max(), 0, 1},
                       {1.f, 1.f, 1.f, 1.f});
  // Unusual length bit patterns: -0.0, denormal, inf, NaN.
  ExpectBlockRoundtrip(
      {1, 2, 3, 4},
      {-0.0f, std::numeric_limits<float>::denorm_min(),
       std::numeric_limits<float>::infinity(),
       std::numeric_limits<float>::quiet_NaN()});
}

TEST(BlockCodecTest, RoundtripFuzz) {
  std::mt19937 rng(0xB10C);
  BlockDecodeScratch scratch;
  for (int iter = 0; iter < 300; ++iter) {
    const size_t n = rng() % 200;
    std::vector<uint32_t> ids(n);
    std::vector<float> lens(n);
    // Mix realistic blocks (ascending ids, clustered lens) with hostile
    // ones (random ids, arbitrary float bit patterns).
    const bool hostile = iter % 4 == 0;
    uint32_t id = rng() % 1000;
    float len = 0.1f * static_cast<float>(rng() % 100);
    for (size_t i = 0; i < n; ++i) {
      if (hostile) {
        ids[i] = rng();
        lens[i] = BitsToFloat(rng());
      } else {
        ids[i] = id;
        id += 1 + rng() % 64;
        if (rng() % 8 == 0) len += 0.25f;
        lens[i] = len;
      }
    }
    std::vector<uint8_t> buf;
    EncodePostingBlock(ids.data(), lens.data(), n, &buf);
    std::vector<uint32_t> out_ids(n);
    std::vector<float> out_lens(n);
    size_t count = 0, consumed = 0;
    ASSERT_TRUE(DecodePostingBlock(buf.data(), buf.size(), n, out_ids.data(),
                                   out_lens.data(), &count, &consumed,
                                   &scratch));
    ASSERT_EQ(count, n);
    ASSERT_EQ(consumed, buf.size());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out_ids[i], ids[i]);
      ASSERT_EQ(FloatToBits(out_lens[i]), FloatToBits(lens[i]));
    }
  }
}

TEST(BlockCodecTest, DecodeRejectsEveryTruncation) {
  std::mt19937 rng(17);
  std::vector<uint32_t> ids(50);
  std::vector<float> lens(50);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<uint32_t>(i * 3 + rng() % 3);
    lens[i] = 0.5f + 0.01f * static_cast<float>(i);
  }
  std::vector<uint8_t> buf;
  EncodePostingBlock(ids.data(), lens.data(), ids.size(), &buf);
  std::vector<uint32_t> out_ids(ids.size());
  std::vector<float> out_lens(lens.size());
  BlockDecodeScratch scratch;
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t count = 0, consumed = 0;
    EXPECT_FALSE(DecodePostingBlock(buf.data(), cut, ids.size(),
                                    out_ids.data(), out_lens.data(), &count,
                                    &consumed, &scratch))
        << "cut=" << cut;
  }
}

TEST(BlockCodecTest, DecodeRejectsOversizedCount) {
  std::vector<uint32_t> ids = {1, 2, 3};
  std::vector<float> lens = {1.f, 2.f, 3.f};
  std::vector<uint8_t> buf;
  EncodePostingBlock(ids.data(), lens.data(), ids.size(), &buf);
  std::vector<uint32_t> out_ids(ids.size());
  std::vector<float> out_lens(lens.size());
  size_t count = 0, consumed = 0;
  BlockDecodeScratch scratch;
  // max_count below the encoded count must fail without writing past it.
  EXPECT_FALSE(DecodePostingBlock(buf.data(), buf.size(), 2, out_ids.data(),
                                  out_lens.data(), &count, &consumed,
                                  &scratch));
}

TEST(BlockCodecTest, DecodeRejectsBadWidth) {
  std::vector<uint32_t> ids = {5};
  std::vector<float> lens = {1.25f};
  std::vector<uint8_t> buf;
  EncodePostingBlock(ids.data(), lens.data(), 1, &buf);
  // Byte layout for count=1: count varint, id varint, 4 base bytes, width.
  buf[buf.size() - 1] = 33;  // width > 32 is malformed
  std::vector<uint32_t> out_ids(1);
  std::vector<float> out_lens(1);
  size_t count = 0, consumed = 0;
  BlockDecodeScratch scratch;
  EXPECT_FALSE(DecodePostingBlock(buf.data(), buf.size(), 1, out_ids.data(),
                                  out_lens.data(), &count, &consumed,
                                  &scratch));
}

TEST(BlockCodecTest, ConsecutiveBlocksDecodeFromOneBuffer) {
  // The store image is a concatenation of blocks; `consumed` must walk it.
  std::vector<uint8_t> buf;
  std::vector<uint32_t> ids1 = {10, 20, 30};
  std::vector<float> lens1 = {1.f, 1.f, 2.f};
  std::vector<uint32_t> ids2 = {5};
  std::vector<float> lens2 = {9.f};
  EncodePostingBlock(ids1.data(), lens1.data(), ids1.size(), &buf);
  EncodePostingBlock(ids2.data(), lens2.data(), ids2.size(), &buf);
  BlockDecodeScratch scratch;
  std::vector<uint32_t> out_ids(3);
  std::vector<float> out_lens(3);
  size_t count = 0, consumed = 0;
  ASSERT_TRUE(DecodePostingBlock(buf.data(), buf.size(), 3, out_ids.data(),
                                 out_lens.data(), &count, &consumed,
                                 &scratch));
  ASSERT_EQ(count, 3u);
  ASSERT_TRUE(DecodePostingBlock(buf.data() + consumed, buf.size() - consumed,
                                 1, out_ids.data(), out_lens.data(), &count,
                                 &consumed, &scratch));
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(out_ids[0], 5u);
  EXPECT_EQ(out_lens[0], 9.f);
}

}  // namespace
}  // namespace simsel
