#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "storage/codec.h"

namespace simsel {
namespace {

Decoder MakeDecoder(const std::vector<uint8_t>& buf) {
  return Decoder{buf.data(), buf.size(), 0};
}

TEST(CodecTest, Fixed32Roundtrip) {
  std::vector<uint8_t> buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed32(&buf, std::numeric_limits<uint32_t>::max());
  Decoder dec = MakeDecoder(buf);
  uint32_t v;
  ASSERT_TRUE(GetFixed32(&dec, &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(GetFixed32(&dec, &v));
  EXPECT_EQ(v, 0xDEADBEEFu);
  ASSERT_TRUE(GetFixed32(&dec, &v));
  EXPECT_EQ(v, std::numeric_limits<uint32_t>::max());
  EXPECT_TRUE(dec.exhausted());
}

TEST(CodecTest, Fixed64Roundtrip) {
  std::vector<uint8_t> buf;
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  Decoder dec = MakeDecoder(buf);
  uint64_t v;
  ASSERT_TRUE(GetFixed64(&dec, &v));
  EXPECT_EQ(v, 0x0123456789ABCDEFULL);
}

TEST(CodecTest, VarintRoundtripBoundaries) {
  std::vector<uint64_t> values = {0,      1,        127,        128,
                                  16383,  16384,    (1u << 21) - 1,
                                  1u << 28, 0xFFFFFFFFULL,
                                  std::numeric_limits<uint64_t>::max()};
  std::vector<uint8_t> buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Decoder dec = MakeDecoder(buf);
  for (uint64_t expected : values) {
    uint64_t v;
    ASSERT_TRUE(GetVarint64(&dec, &v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(dec.exhausted());
}

TEST(CodecTest, Varint32RejectsOversized) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, 0x1'00000000ULL);  // > 32 bits
  Decoder dec = MakeDecoder(buf);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&dec, &v));
}

TEST(CodecTest, VarintSizes) {
  std::vector<uint8_t> buf;
  PutVarint32(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarint32(&buf, 128);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(CodecTest, TruncatedInputFails) {
  std::vector<uint8_t> buf;
  PutFixed64(&buf, 12345);
  buf.pop_back();
  Decoder dec = MakeDecoder(buf);
  uint64_t v;
  EXPECT_FALSE(GetFixed64(&dec, &v));
}

TEST(CodecTest, TruncatedVarintFails) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, 1u << 30);
  buf.pop_back();
  Decoder dec = MakeDecoder(buf);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&dec, &v));
}

TEST(CodecTest, OverlongVarintFails) {
  // 11 continuation bytes exceed the 64-bit budget.
  std::vector<uint8_t> buf(11, 0x80);
  Decoder dec = MakeDecoder(buf);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&dec, &v));
}

TEST(CodecTest, FloatRoundtrip) {
  std::vector<uint8_t> buf;
  PutFloat(&buf, 3.14159f);
  PutFloat(&buf, -0.0f);
  PutFloat(&buf, std::numeric_limits<float>::infinity());
  Decoder dec = MakeDecoder(buf);
  float f;
  ASSERT_TRUE(GetFloat(&dec, &f));
  EXPECT_FLOAT_EQ(f, 3.14159f);
  ASSERT_TRUE(GetFloat(&dec, &f));
  EXPECT_EQ(f, 0.0f);
  ASSERT_TRUE(GetFloat(&dec, &f));
  EXPECT_TRUE(std::isinf(f));
}

TEST(CodecTest, DoubleRoundtrip) {
  std::vector<uint8_t> buf;
  PutDouble(&buf, 2.718281828459045);
  Decoder dec = MakeDecoder(buf);
  double d;
  ASSERT_TRUE(GetDouble(&dec, &d));
  EXPECT_DOUBLE_EQ(d, 2.718281828459045);
}

TEST(CodecTest, LengthPrefixedRoundtrip) {
  std::vector<uint8_t> buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  Decoder dec = MakeDecoder(buf);
  std::string s;
  ASSERT_TRUE(GetLengthPrefixed(&dec, &s));
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&dec, &s));
  EXPECT_EQ(s, "");
  ASSERT_TRUE(GetLengthPrefixed(&dec, &s));
  EXPECT_EQ(s, std::string(1000, 'x'));
}

TEST(CodecTest, LengthPrefixedTruncatedFails) {
  std::vector<uint8_t> buf;
  PutLengthPrefixed(&buf, "hello");
  buf.resize(3);
  Decoder dec = MakeDecoder(buf);
  std::string s;
  EXPECT_FALSE(GetLengthPrefixed(&dec, &s));
}

TEST(CodecTest, FnvIsStableAndSensitive) {
  EXPECT_EQ(Fnv1a64("abc", 3), Fnv1a64("abc", 3));
  EXPECT_NE(Fnv1a64("abc", 3), Fnv1a64("abd", 3));
  EXPECT_NE(Fnv1a64(uint64_t{1}), Fnv1a64(uint64_t{2}));
}

}  // namespace
}  // namespace simsel
