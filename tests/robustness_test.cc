#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "test_util.h"

namespace simsel {
namespace {

using testing_util::ExpectSameMatches;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- Degenerate collection shapes. ---

TEST(RobustnessTest, AllRecordsIdentical) {
  std::vector<std::string> records(50, "identical record");
  SimilaritySelector sel = SimilaritySelector::Build(records);
  QueryResult r = sel.Select("identical record", 0.99);
  EXPECT_EQ(r.matches.size(), 50u);
  for (const Match& m : r.matches) EXPECT_NEAR(m.score, 1.0, 1e-5);
  // All algorithms agree.
  for (AlgorithmKind kind :
       {AlgorithmKind::kSortById, AlgorithmKind::kTa, AlgorithmKind::kInra,
        AlgorithmKind::kSf, AlgorithmKind::kHybrid,
        AlgorithmKind::kPrefixFilter}) {
    QueryResult other = sel.Select("identical record", 0.99, kind);
    ExpectSameMatches(r.matches, other.matches, AlgorithmKindName(kind));
  }
}

TEST(RobustnessTest, SingleRecordCollection) {
  SimilaritySelector sel = SimilaritySelector::Build({"only one"});
  EXPECT_EQ(sel.Select("only one", 0.9).matches.size(), 1u);
  EXPECT_TRUE(sel.Select("different", 0.9).matches.empty());
}

TEST(RobustnessTest, EmptyAndWhitespaceRecords) {
  SimilaritySelector sel =
      SimilaritySelector::Build({"", "   ", "real record"});
  QueryResult r = sel.Select("real record", 0.9);
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_EQ(r.matches[0].id, 2u);
  // Empty query against a collection containing empty sets.
  EXPECT_TRUE(sel.Select("", 0.5).matches.empty());
}

TEST(RobustnessTest, SingleCharacterRecords) {
  std::vector<std::string> records = {"a", "b", "c", "ab"};
  SimilaritySelector sel = SimilaritySelector::Build(records);
  QueryResult r = sel.Select("a", 0.5);
  ASSERT_FALSE(r.matches.empty());
  EXPECT_EQ(r.matches[0].id, 0u);
}

TEST(RobustnessTest, VeryLongRecord) {
  std::string longrec;
  for (int i = 0; i < 200; ++i) longrec += "token" + std::to_string(i) + " ";
  SimilaritySelector sel = SimilaritySelector::Build({longrec, "short"});
  QueryResult r = sel.Select(longrec, 0.95);
  ASSERT_FALSE(r.matches.empty());
  EXPECT_EQ(r.matches[0].id, 0u);
}

TEST(RobustnessTest, HighlySkewedListLengths) {
  // One token appears everywhere, others are unique — the regime where
  // SF's shortest-first ordering matters most.
  std::vector<std::string> records;
  for (int i = 0; i < 120; ++i) {
    records.push_back("common uniq" + std::to_string(i));
  }
  BuildOptions build;
  build.tokenizer.kind = TokenizerKind::kWord;
  SimilaritySelector sel = SimilaritySelector::Build(records, build);
  PreparedQuery q = sel.Prepare("common uniq7");
  QueryResult expected =
      sel.SelectPrepared(q, 0.5, AlgorithmKind::kLinearScan, {});
  for (AlgorithmKind kind :
       {AlgorithmKind::kSf, AlgorithmKind::kInra, AlgorithmKind::kHybrid,
        AlgorithmKind::kIta, AlgorithmKind::kPrefixFilter}) {
    QueryResult actual = sel.SelectPrepared(q, 0.5, kind, {});
    ExpectSameMatches(expected.matches, actual.matches,
                      AlgorithmKindName(kind));
  }
}

// --- Saved index roundtrip and corruption fuzzing. ---

TEST(RobustnessTest, SavedIndexRoundtripAnswersIdentically) {
  std::vector<std::string> records =
      testing_util::MakeWordRecords(200, /*seed=*/31);
  SimilaritySelector original = SimilaritySelector::Build(records);
  std::string path = TempPath("simsel_roundtrip.idx");
  ASSERT_TRUE(original.SaveIndex(path).ok());

  Result<SimilaritySelector> loaded =
      SimilaritySelector::BuildWithSavedIndex(records, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (SetId s = 0; s < 20; ++s) {
    QueryResult a = original.Select(records[s], 0.7);
    QueryResult b = loaded->Select(records[s], 0.7);
    ExpectSameMatches(a.matches, b.matches, records[s]);
  }
  std::remove(path.c_str());
}

TEST(RobustnessTest, SavedIndexRejectsMismatchedRecords) {
  std::vector<std::string> records =
      testing_util::MakeWordRecords(100, /*seed=*/33);
  SimilaritySelector original = SimilaritySelector::Build(records);
  std::string path = TempPath("simsel_mismatch.idx");
  ASSERT_TRUE(original.SaveIndex(path).ok());

  std::vector<std::string> other =
      testing_util::MakeWordRecords(120, /*seed=*/77);
  Result<SimilaritySelector> loaded =
      SimilaritySelector::BuildWithSavedIndex(other, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(RobustnessTest, TruncatedIndexFilesNeverCrash) {
  std::vector<std::string> records =
      testing_util::MakeWordRecords(80, /*seed=*/35);
  SimilaritySelector original = SimilaritySelector::Build(records);
  std::string path = TempPath("simsel_trunc.idx");
  ASSERT_TRUE(original.SaveIndex(path).ok());
  auto full_size = std::filesystem::file_size(path);

  // Truncate at a spread of byte offsets: Load must always fail cleanly.
  for (uintmax_t cut = 0; cut < full_size; cut += std::max<uintmax_t>(1, full_size / 40)) {
    std::filesystem::resize_file(path, cut);
    Result<InvertedIndex> loaded = InvertedIndex::Load(path);
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut;
    // Restore for the next iteration.
    std::remove(path.c_str());
    ASSERT_TRUE(original.SaveIndex(path).ok());
  }
  std::remove(path.c_str());
}

TEST(RobustnessTest, BitFlippedIndexFilesNeverCrash) {
  std::vector<std::string> records =
      testing_util::MakeWordRecords(60, /*seed=*/37);
  SimilaritySelector original = SimilaritySelector::Build(records);
  std::string path = TempPath("simsel_flip.idx");
  ASSERT_TRUE(original.SaveIndex(path).ok());
  auto size = std::filesystem::file_size(path);

  for (uintmax_t pos = 0; pos < size; pos += std::max<uintmax_t>(1, size / 25)) {
    {
      std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
      f.seekg(static_cast<std::streamoff>(pos));
      char c;
      f.get(c);
      f.seekp(static_cast<std::streamoff>(pos));
      f.put(static_cast<char>(c ^ 0x55));
    }
    // Either the checksum rejects it or decoding fails — never a crash.
    Result<InvertedIndex> loaded = InvertedIndex::Load(path);
    EXPECT_FALSE(loaded.ok()) << "flip at " << pos;
    std::remove(path.c_str());
    ASSERT_TRUE(original.SaveIndex(path).ok());
  }
  std::remove(path.c_str());
}

// --- Randomized differential testing across corpus shapes. ---

TEST(RobustnessTest, DifferentCorpusShapesStayExact) {
  struct Shape {
    size_t n;
    size_t vocab;
    uint64_t seed;
  };
  for (const Shape& shape :
       {Shape{150, 10, 41}, Shape{150, 2000, 43}, Shape{60, 30, 47}}) {
    CorpusOptions co;
    co.num_records = shape.n;
    co.vocab_size = shape.vocab;
    co.min_words = 1;
    co.max_words = 2;
    co.seed = shape.seed;
    SimilaritySelector sel =
        SimilaritySelector::Build(GenerateCorpus(co).records);
    for (double tau : {0.4, 0.8}) {
      for (SetId s = 0; s < 10; ++s) {
        PreparedQuery q = sel.Prepare(sel.collection().text(s * 3));
        QueryResult expected =
            sel.SelectPrepared(q, tau, AlgorithmKind::kLinearScan, {});
        for (AlgorithmKind kind :
             {AlgorithmKind::kSf, AlgorithmKind::kHybrid,
              AlgorithmKind::kInra, AlgorithmKind::kIta,
              AlgorithmKind::kPrefixFilter}) {
          QueryResult actual = sel.SelectPrepared(q, tau, kind, {});
          ExpectSameMatches(expected.matches, actual.matches,
                            std::string(AlgorithmKindName(kind)) + " vocab=" +
                                std::to_string(shape.vocab));
        }
      }
    }
  }
}

}  // namespace
}  // namespace simsel
