// Unit tests of the sketch prefilter tier: the threshold math, signature
// determinism, router soundness against brute force, the engage gate, and
// the adversarial small-k configuration (many sketch false positives, yet
// exactness preserved by verification).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/internal.h"
#include "core/selector.h"
#include "obs/metrics_registry.h"
#include "sketch/minhash.h"
#include "sketch/partition_router.h"
#include "sketch/prefilter.h"
#include "test_util.h"

namespace simsel {
namespace {

using testing_util::MakeSelector;
using testing_util::MakeWordRecords;

TEST(SketchMathTest, ThresholdsMatchClosedForms) {
  sketch::SketchParams p;  // k=128, bands=64, rows=2, delta=1e-4
  ASSERT_TRUE(p.valid());
  EXPECT_DOUBLE_EQ(sketch::AdmissionEpsilon(p),
                   std::sqrt(std::log(1.0 / p.miss_bound) / (2.0 * p.k)));
  EXPECT_DOUBLE_EQ(
      sketch::EngageThreshold(p),
      std::pow(1.0 - std::pow(p.miss_bound, 1.0 / p.bands), 1.0 / p.rows));
  // The documented calibration: defaults engage near j ~ 0.26 with
  // admission slack ~ 0.13.
  EXPECT_NEAR(sketch::EngageThreshold(p), 0.263, 0.01);
  EXPECT_NEAR(sketch::AdmissionEpsilon(p), 0.134, 0.01);
  // More components tighten the slack; more bands lower the engage bar.
  sketch::SketchParams big = p;
  big.k = 512;
  big.bands = 256;
  EXPECT_LT(sketch::AdmissionEpsilon(big), sketch::AdmissionEpsilon(p));
  EXPECT_LT(sketch::EngageThreshold(big), sketch::EngageThreshold(p));
}

TEST(SketchMathTest, ParamValidation) {
  sketch::SketchParams p;
  EXPECT_TRUE(p.valid());
  p.bands = p.k / p.rows + 1;  // bands * rows > k
  EXPECT_FALSE(p.valid());
  p = sketch::SketchParams();
  p.k = 0;
  EXPECT_FALSE(p.valid());
  p = sketch::SketchParams();
  p.miss_bound = 1.0;
  EXPECT_FALSE(p.valid());
}

TEST(MinHashTest, SignatureIsDeterministicAndSeedSensitive) {
  sketch::SketchParams p;
  std::vector<uint64_t> seeds = sketch::ComponentSeeds(p);
  ASSERT_EQ(seeds.size(), p.k);
  std::vector<uint32_t> tokens = {3, 17, 42, 99, 1000};
  std::vector<uint64_t> a(p.k), b(p.k);
  sketch::ComputeSignature(tokens.data(), tokens.size(), seeds, a.data());
  sketch::ComputeSignature(tokens.data(), tokens.size(), seeds, b.data());
  EXPECT_EQ(a, b);
  // A different family seed yields a different signature.
  sketch::SketchParams other = p;
  other.seed ^= 1;
  std::vector<uint64_t> seeds2 = sketch::ComponentSeeds(other);
  sketch::ComputeSignature(tokens.data(), tokens.size(), seeds2, b.data());
  EXPECT_NE(a, b);
  // Empty set: the sentinel signature.
  sketch::ComputeSignature(nullptr, 0, seeds, b.data());
  for (uint64_t w : b) EXPECT_EQ(w, UINT64_MAX);
}

TEST(MinHashTest, EstimateTracksTrueJaccard) {
  sketch::SketchParams p;
  p.k = 512;  // tight estimate for the test
  p.bands = 64;
  p.rows = 2;
  std::vector<uint64_t> seeds = sketch::ComponentSeeds(p);
  // |a| = 100, |b| = 100, overlap 60 -> J = 60 / 140.
  std::vector<uint32_t> a, b;
  for (uint32_t t = 0; t < 100; ++t) a.push_back(t);
  for (uint32_t t = 40; t < 140; ++t) b.push_back(t);
  std::vector<uint64_t> sa(p.k), sb(p.k);
  sketch::ComputeSignature(a.data(), a.size(), seeds, sa.data());
  sketch::ComputeSignature(b.data(), b.size(), seeds, sb.data());
  const double truth = 60.0 / 140.0;
  EXPECT_NEAR(sketch::EstimateJaccard(sa.data(), sb.data(), p.k), truth,
              3.0 * std::sqrt(truth * (1 - truth) / p.k));
  // Identical and disjoint sets hit the extremes exactly.
  EXPECT_DOUBLE_EQ(sketch::EstimateJaccard(sa.data(), sa.data(), p.k), 1.0);
}

// The router's admission bound is an upper bound on the true score: no set
// scoring >= tau may live in a skipped partition. Brute-forced over every
// (query, tau) pair.
TEST(PartitionRouterTest, NeverSkipsAPartitionHoldingAnAnswer) {
  SimilaritySelector sel = MakeSelector(300, 2024, /*with_sql=*/false);
  const IdfMeasure& measure = sel.measure();
  const size_t n = sel.collection().size();
  sketch::PartitionRouter router = sketch::PartitionRouter::Build(
      measure, 0, static_cast<SetId>(n), /*partitions=*/16, /*buckets=*/32);
  ASSERT_GT(router.num_partitions(), 1u);
  for (double tau : {0.5, 0.7, 0.9}) {
    for (SetId s = 0; s < 40; ++s) {
      PreparedQuery q = sel.Prepare(sel.collection().text(s * 7));
      internal::LengthWindow win =
          internal::ComputeLengthWindow(q, tau, /*enabled=*/true);
      sketch::PartitionRouter::Route route =
          router.RouteQuery(q, tau, win.lo, win.hi);
      for (SetId cand = 0; cand < static_cast<SetId>(n); ++cand) {
        if (measure.Score(q, cand) < tau) continue;
        uint32_t part = router.PartitionOf(measure.set_length(cand));
        ASSERT_TRUE(route.any) << "tau=" << tau << " q=" << s;
        ASSERT_LT(part, route.mask.size());
        EXPECT_TRUE(route.mask[part])
            << "answer " << cand << " in skipped partition " << part
            << " tau=" << tau << " q=" << s;
      }
    }
  }
}

TEST(PartitionRouterTest, MaxSetSizeBelowIsAnUpperBound) {
  SimilaritySelector sel = MakeSelector(200, 7, /*with_sql=*/false);
  const IdfMeasure& measure = sel.measure();
  const size_t n = sel.collection().size();
  sketch::PartitionRouter router =
      sketch::PartitionRouter::Build(measure, 0, static_cast<SetId>(n), 8, 16);
  for (float hi : {0.0f, 2.0f, 5.0f, 1e9f}) {
    uint32_t bound = router.MaxSetSizeBelow(hi);
    for (SetId s = 0; s < static_cast<SetId>(n); ++s) {
      if (measure.set_length(s) <= hi) {
        EXPECT_LE(sel.collection().set(s).tokens.size(), bound);
      }
    }
  }
}

// The engage gate: high thresholds clear the Jaccard bar and the tier
// answers; low thresholds provably cannot and it falls through.
TEST(PrefilterPlanTest, EngagesAtHighTauFallsThroughAtLow) {
  SimilaritySelector sel = MakeSelector(400, 31, /*with_sql=*/false);
  ASSERT_NE(sel.prefilter(), nullptr);
  const sketch::Prefilter& pf = *sel.prefilter();
  size_t engaged_high = 0, probed = 0;
  for (SetId s = 0; s < 20; ++s) {
    PreparedQuery q = sel.Prepare(sel.collection().text(s * 11));
    sketch::Prefilter::Plan low = pf.PlanFor(q, 0.55);
    EXPECT_FALSE(low.engaged) << "q=" << s;
    EXPECT_LT(low.j_min, low.j_engage);
    sketch::Prefilter::Plan high = pf.PlanFor(q, 0.92);
    ++probed;
    if (high.engaged) ++engaged_high;
    EXPECT_DOUBLE_EQ(high.j_engage, sketch::EngageThreshold(pf.params()));
  }
  // The calibration claim of docs/SKETCHES.md: defaults engage at tau=0.9+
  // for typical queries.
  EXPECT_GT(engaged_high * 2, probed) << engaged_high << "/" << probed;
}

TEST(PrefilterPlanTest, IneligibleKindsBypassTheTier) {
  EXPECT_FALSE(sketch::PrefilterEligible(AlgorithmKind::kLinearScan));
  EXPECT_FALSE(sketch::PrefilterEligible(AlgorithmKind::kSql));
  EXPECT_FALSE(sketch::PrefilterEligible(AlgorithmKind::kSortById));
  EXPECT_TRUE(sketch::PrefilterEligible(AlgorithmKind::kSf));
  EXPECT_TRUE(sketch::PrefilterEligible(AlgorithmKind::kInra));
  EXPECT_TRUE(sketch::PrefilterEligible(AlgorithmKind::kHybrid));
}

TEST(PrefilterBuildTest, RejectsInvalidInputs) {
  SimilaritySelector sel = MakeSelector(50, 99, /*with_sql=*/false);
  sketch::SketchParams bad;
  bad.bands = bad.k + 1;
  bad.rows = 1;
  EXPECT_EQ(sketch::Prefilter::Build(sel.measure(), bad, nullptr, 0, 0),
            nullptr);
  sketch::SketchParams ok;
  // Empty range: nothing to filter.
  EXPECT_EQ(sketch::Prefilter::Build(sel.measure(), ok, nullptr, 5, 5),
            nullptr);
}

TEST(PrefilterBuildTest, DisablingSketchesAtBuildDropsTheTier) {
  BuildOptions build;
  build.tokenizer.q = 3;
  build.index.build_sketches = false;
  SimilaritySelector sel =
      SimilaritySelector::Build(MakeWordRecords(60, 5), build);
  EXPECT_EQ(sel.prefilter(), nullptr);
  EXPECT_FALSE(sel.index().has_sketches());
  // Queries still work (the tier is an optimization, never a requirement).
  QueryResult r = sel.Select(sel.collection().text(3), 0.9);
  EXPECT_FALSE(r.matches.empty());
}

// Adversarial configuration: k = 16 components and single-row bands make
// the sketch estimate noisy and the banding trigger-happy — many false
// positives reach verification. Exactness must survive anyway, and the
// false positives must be visible in the measured counters.
TEST(PrefilterAdversarialTest, SmallKStaysExactAndMeasuresFalsePositives) {
  BuildOptions build;
  build.tokenizer.q = 3;
  build.index.sketch.k = 16;
  build.index.sketch.bands = 16;
  build.index.sketch.rows = 1;
  build.index.sketch.miss_bound = 1e-3;
  // Base words plus 1-2-edit variants: the variants sit at intermediate
  // similarity (high Jaccard to their base, exact score below a high τ) —
  // precisely the candidates a noisy sketch admits and exact verification
  // must reject.
  std::vector<std::string> bases = MakeWordRecords(40, 424);
  Rng rng(4321);
  std::vector<std::string> records;
  for (const std::string& base : bases) {
    records.push_back(base);
    for (int v = 0; v < 6; ++v) {
      records.push_back(ApplyModifications(base, 1 + v % 2, &rng));
    }
  }
  SimilaritySelector sel = SimilaritySelector::Build(records, build);
  ASSERT_NE(sel.prefilter(), nullptr);
  const sketch::Prefilter& pf = *sel.prefilter();
  // Single-row bands engage well below the default bar, and 16 components
  // leave a huge admission slack (~0.46): the tier runs often and admits
  // aggressively — maximum false-positive pressure on verification.
  EXPECT_LT(sketch::EngageThreshold(pf.params()), 0.4);
  EXPECT_GT(sketch::AdmissionEpsilon(pf.params()), 0.4);

  obs::Counter* admitted = obs::MetricsRegistry::Global().GetCounter(
      "simsel_prefilter_admitted_total");
  obs::Counter* fp =
      obs::MetricsRegistry::Global().GetCounter("simsel_prefilter_fp_total");
  const uint64_t admitted0 = admitted->Value();
  const uint64_t fp0 = fp->Value();

  SelectOptions off;
  off.prefilter = false;
  uint64_t engaged_results = 0;
  size_t engaged_queries = 0;
  for (const std::string& query : bases) {
    PreparedQuery q = sel.Prepare(query);
    for (double tau : {0.7, 0.9, 0.95}) {
      QueryResult with = sel.SelectPrepared(q, tau, AlgorithmKind::kSf, {});
      QueryResult without =
          sel.SelectPrepared(q, tau, AlgorithmKind::kSf, off);
      testing_util::ExpectSameMatches(without.matches, with.matches,
                                      "small-k tau=" + std::to_string(tau));
      sketch::Prefilter::Plan plan = pf.PlanFor(q, tau);
      if (plan.engaged && !plan.empty) {
        ++engaged_queries;
        engaged_results += with.matches.size();
      }
    }
  }
  ASSERT_GT(engaged_queries, 0u);
  const uint64_t admitted_delta = admitted->Value() - admitted0;
  const uint64_t fp_delta = fp->Value() - fp0;
  // Admission is a superset of the answers; the surplus is the measured
  // false positives, every one caught by verification (the parity loop).
  EXPECT_EQ(admitted_delta, engaged_results + fp_delta);
  EXPECT_GT(fp_delta, 0u);
}

// The delta screen must admit every true answer regardless of similarity
// level (it is Hoeffding-sound at any J, unlike the banding stage).
TEST(DeltaScreenTest, AdmitsEveryTrueAnswer) {
  SimilaritySelector sel = MakeSelector(250, 123, /*with_sql=*/false);
  ASSERT_NE(sel.prefilter(), nullptr);
  const sketch::Prefilter& pf = *sel.prefilter();
  const std::vector<uint64_t>& seeds = pf.seeds();
  for (double tau : {0.5, 0.8, 0.95}) {
    for (SetId s = 0; s < 30; ++s) {
      PreparedQuery q = sel.Prepare(sel.collection().text(s * 3));
      sketch::DeltaScreen screen = pf.MakeDeltaScreen(q, tau);
      if (!screen.active()) continue;
      for (SetId cand = 0; cand < 250; ++cand) {
        if (sel.measure().Score(q, cand) < tau) continue;
        const SetRecord& rec = sel.collection().set(cand);
        std::vector<uint64_t> sig(pf.params().k);
        sketch::ComputeSignature(rec.tokens.data(), rec.tokens.size(), seeds,
                                 sig.data());
        EXPECT_TRUE(screen.Admits(sig.data(),
                                  sel.measure().set_length(cand),
                                  rec.tokens.size()))
            << "answer " << cand << " rejected, tau=" << tau << " q=" << s;
      }
    }
  }
}

}  // namespace
}  // namespace simsel
