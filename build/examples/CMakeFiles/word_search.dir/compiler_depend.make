# Empty compiler generated dependencies file for word_search.
# This may be replaced when dependencies are built.
