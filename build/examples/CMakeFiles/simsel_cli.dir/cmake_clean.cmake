file(REMOVE_RECURSE
  "CMakeFiles/simsel_cli.dir/simsel_cli.cpp.o"
  "CMakeFiles/simsel_cli.dir/simsel_cli.cpp.o.d"
  "simsel_cli"
  "simsel_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsel_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
