# Empty dependencies file for simsel_cli.
# This may be replaced when dependencies are built.
