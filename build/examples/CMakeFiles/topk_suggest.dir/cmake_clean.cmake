file(REMOVE_RECURSE
  "CMakeFiles/topk_suggest.dir/topk_suggest.cpp.o"
  "CMakeFiles/topk_suggest.dir/topk_suggest.cpp.o.d"
  "topk_suggest"
  "topk_suggest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_suggest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
