# Empty dependencies file for topk_suggest.
# This may be replaced when dependencies are built.
