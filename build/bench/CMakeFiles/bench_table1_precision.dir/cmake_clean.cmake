file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_precision.dir/bench_table1_precision.cc.o"
  "CMakeFiles/bench_table1_precision.dir/bench_table1_precision.cc.o.d"
  "bench_table1_precision"
  "bench_table1_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
