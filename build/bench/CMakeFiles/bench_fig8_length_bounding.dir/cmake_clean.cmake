file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_length_bounding.dir/bench_fig8_length_bounding.cc.o"
  "CMakeFiles/bench_fig8_length_bounding.dir/bench_fig8_length_bounding.cc.o.d"
  "bench_fig8_length_bounding"
  "bench_fig8_length_bounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_length_bounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
