# Empty compiler generated dependencies file for bench_fig8_length_bounding.
# This may be replaced when dependencies are built.
