file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_wallclock.dir/bench_fig6_wallclock.cc.o"
  "CMakeFiles/bench_fig6_wallclock.dir/bench_fig6_wallclock.cc.o.d"
  "bench_fig6_wallclock"
  "bench_fig6_wallclock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_wallclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
