# Empty dependencies file for bench_fig9_skip_lists.
# This may be replaced when dependencies are built.
