file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_skip_lists.dir/bench_fig9_skip_lists.cc.o"
  "CMakeFiles/bench_fig9_skip_lists.dir/bench_fig9_skip_lists.cc.o.d"
  "bench_fig9_skip_lists"
  "bench_fig9_skip_lists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_skip_lists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
