# Empty dependencies file for skip_index_test.
# This may be replaced when dependencies are built.
