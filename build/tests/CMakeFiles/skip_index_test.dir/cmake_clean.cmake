file(REMOVE_RECURSE
  "CMakeFiles/skip_index_test.dir/skip_index_test.cc.o"
  "CMakeFiles/skip_index_test.dir/skip_index_test.cc.o.d"
  "skip_index_test"
  "skip_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skip_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
