file(REMOVE_RECURSE
  "CMakeFiles/tfidf_select_test.dir/tfidf_select_test.cc.o"
  "CMakeFiles/tfidf_select_test.dir/tfidf_select_test.cc.o.d"
  "tfidf_select_test"
  "tfidf_select_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfidf_select_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
