# Empty dependencies file for tfidf_select_test.
# This may be replaced when dependencies are built.
