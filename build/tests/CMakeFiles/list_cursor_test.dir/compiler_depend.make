# Empty compiler generated dependencies file for list_cursor_test.
# This may be replaced when dependencies are built.
