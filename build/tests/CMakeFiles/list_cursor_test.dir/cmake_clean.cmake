file(REMOVE_RECURSE
  "CMakeFiles/list_cursor_test.dir/list_cursor_test.cc.o"
  "CMakeFiles/list_cursor_test.dir/list_cursor_test.cc.o.d"
  "list_cursor_test"
  "list_cursor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_cursor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
