file(REMOVE_RECURSE
  "CMakeFiles/substrate_param_test.dir/substrate_param_test.cc.o"
  "CMakeFiles/substrate_param_test.dir/substrate_param_test.cc.o.d"
  "substrate_param_test"
  "substrate_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substrate_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
