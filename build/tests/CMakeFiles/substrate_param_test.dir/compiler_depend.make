# Empty compiler generated dependencies file for substrate_param_test.
# This may be replaced when dependencies are built.
