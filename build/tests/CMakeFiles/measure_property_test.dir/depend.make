# Empty dependencies file for measure_property_test.
# This may be replaced when dependencies are built.
