file(REMOVE_RECURSE
  "CMakeFiles/measure_property_test.dir/measure_property_test.cc.o"
  "CMakeFiles/measure_property_test.dir/measure_property_test.cc.o.d"
  "measure_property_test"
  "measure_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
