# Empty compiler generated dependencies file for sql_baseline_test.
# This may be replaced when dependencies are built.
