file(REMOVE_RECURSE
  "CMakeFiles/sql_baseline_test.dir/sql_baseline_test.cc.o"
  "CMakeFiles/sql_baseline_test.dir/sql_baseline_test.cc.o.d"
  "sql_baseline_test"
  "sql_baseline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
