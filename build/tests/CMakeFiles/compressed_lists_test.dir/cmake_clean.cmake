file(REMOVE_RECURSE
  "CMakeFiles/compressed_lists_test.dir/compressed_lists_test.cc.o"
  "CMakeFiles/compressed_lists_test.dir/compressed_lists_test.cc.o.d"
  "compressed_lists_test"
  "compressed_lists_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_lists_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
