# Empty compiler generated dependencies file for compressed_lists_test.
# This may be replaced when dependencies are built.
