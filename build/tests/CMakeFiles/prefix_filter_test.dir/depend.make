# Empty dependencies file for prefix_filter_test.
# This may be replaced when dependencies are built.
