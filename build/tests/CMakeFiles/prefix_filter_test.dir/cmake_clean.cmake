file(REMOVE_RECURSE
  "CMakeFiles/prefix_filter_test.dir/prefix_filter_test.cc.o"
  "CMakeFiles/prefix_filter_test.dir/prefix_filter_test.cc.o.d"
  "prefix_filter_test"
  "prefix_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
