# Empty compiler generated dependencies file for loser_tree_test.
# This may be replaced when dependencies are built.
