file(REMOVE_RECURSE
  "CMakeFiles/loser_tree_test.dir/loser_tree_test.cc.o"
  "CMakeFiles/loser_tree_test.dir/loser_tree_test.cc.o.d"
  "loser_tree_test"
  "loser_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loser_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
