file(REMOVE_RECURSE
  "CMakeFiles/precision_test.dir/precision_test.cc.o"
  "CMakeFiles/precision_test.dir/precision_test.cc.o.d"
  "precision_test"
  "precision_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
