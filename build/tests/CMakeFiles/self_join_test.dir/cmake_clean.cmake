file(REMOVE_RECURSE
  "CMakeFiles/self_join_test.dir/self_join_test.cc.o"
  "CMakeFiles/self_join_test.dir/self_join_test.cc.o.d"
  "self_join_test"
  "self_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
