# Empty dependencies file for self_join_test.
# This may be replaced when dependencies are built.
