file(REMOVE_RECURSE
  "CMakeFiles/posting_store_test.dir/posting_store_test.cc.o"
  "CMakeFiles/posting_store_test.dir/posting_store_test.cc.o.d"
  "posting_store_test"
  "posting_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posting_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
