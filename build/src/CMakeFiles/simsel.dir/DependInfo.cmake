
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/metrics.cc" "src/CMakeFiles/simsel.dir/common/metrics.cc.o" "gcc" "src/CMakeFiles/simsel.dir/common/metrics.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/simsel.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/simsel.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/simsel.dir/common/status.cc.o" "gcc" "src/CMakeFiles/simsel.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/simsel.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/simsel.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/container/extendible_hash.cc" "src/CMakeFiles/simsel.dir/container/extendible_hash.cc.o" "gcc" "src/CMakeFiles/simsel.dir/container/extendible_hash.cc.o.d"
  "/root/repo/src/container/skip_index.cc" "src/CMakeFiles/simsel.dir/container/skip_index.cc.o" "gcc" "src/CMakeFiles/simsel.dir/container/skip_index.cc.o.d"
  "/root/repo/src/core/adaptive.cc" "src/CMakeFiles/simsel.dir/core/adaptive.cc.o" "gcc" "src/CMakeFiles/simsel.dir/core/adaptive.cc.o.d"
  "/root/repo/src/core/bm25_select.cc" "src/CMakeFiles/simsel.dir/core/bm25_select.cc.o" "gcc" "src/CMakeFiles/simsel.dir/core/bm25_select.cc.o.d"
  "/root/repo/src/core/dynamic.cc" "src/CMakeFiles/simsel.dir/core/dynamic.cc.o" "gcc" "src/CMakeFiles/simsel.dir/core/dynamic.cc.o.d"
  "/root/repo/src/core/hybrid.cc" "src/CMakeFiles/simsel.dir/core/hybrid.cc.o" "gcc" "src/CMakeFiles/simsel.dir/core/hybrid.cc.o.d"
  "/root/repo/src/core/inra.cc" "src/CMakeFiles/simsel.dir/core/inra.cc.o" "gcc" "src/CMakeFiles/simsel.dir/core/inra.cc.o.d"
  "/root/repo/src/core/linear_scan.cc" "src/CMakeFiles/simsel.dir/core/linear_scan.cc.o" "gcc" "src/CMakeFiles/simsel.dir/core/linear_scan.cc.o.d"
  "/root/repo/src/core/nra.cc" "src/CMakeFiles/simsel.dir/core/nra.cc.o" "gcc" "src/CMakeFiles/simsel.dir/core/nra.cc.o.d"
  "/root/repo/src/core/parallel.cc" "src/CMakeFiles/simsel.dir/core/parallel.cc.o" "gcc" "src/CMakeFiles/simsel.dir/core/parallel.cc.o.d"
  "/root/repo/src/core/prefix_filter.cc" "src/CMakeFiles/simsel.dir/core/prefix_filter.cc.o" "gcc" "src/CMakeFiles/simsel.dir/core/prefix_filter.cc.o.d"
  "/root/repo/src/core/selector.cc" "src/CMakeFiles/simsel.dir/core/selector.cc.o" "gcc" "src/CMakeFiles/simsel.dir/core/selector.cc.o.d"
  "/root/repo/src/core/self_join.cc" "src/CMakeFiles/simsel.dir/core/self_join.cc.o" "gcc" "src/CMakeFiles/simsel.dir/core/self_join.cc.o.d"
  "/root/repo/src/core/sf.cc" "src/CMakeFiles/simsel.dir/core/sf.cc.o" "gcc" "src/CMakeFiles/simsel.dir/core/sf.cc.o.d"
  "/root/repo/src/core/sort_by_id.cc" "src/CMakeFiles/simsel.dir/core/sort_by_id.cc.o" "gcc" "src/CMakeFiles/simsel.dir/core/sort_by_id.cc.o.d"
  "/root/repo/src/core/sql_baseline.cc" "src/CMakeFiles/simsel.dir/core/sql_baseline.cc.o" "gcc" "src/CMakeFiles/simsel.dir/core/sql_baseline.cc.o.d"
  "/root/repo/src/core/ta.cc" "src/CMakeFiles/simsel.dir/core/ta.cc.o" "gcc" "src/CMakeFiles/simsel.dir/core/ta.cc.o.d"
  "/root/repo/src/core/tfidf_select.cc" "src/CMakeFiles/simsel.dir/core/tfidf_select.cc.o" "gcc" "src/CMakeFiles/simsel.dir/core/tfidf_select.cc.o.d"
  "/root/repo/src/core/topk.cc" "src/CMakeFiles/simsel.dir/core/topk.cc.o" "gcc" "src/CMakeFiles/simsel.dir/core/topk.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/simsel.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/simsel.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/precision.cc" "src/CMakeFiles/simsel.dir/eval/precision.cc.o" "gcc" "src/CMakeFiles/simsel.dir/eval/precision.cc.o.d"
  "/root/repo/src/gen/corpus.cc" "src/CMakeFiles/simsel.dir/gen/corpus.cc.o" "gcc" "src/CMakeFiles/simsel.dir/gen/corpus.cc.o.d"
  "/root/repo/src/gen/error_model.cc" "src/CMakeFiles/simsel.dir/gen/error_model.cc.o" "gcc" "src/CMakeFiles/simsel.dir/gen/error_model.cc.o.d"
  "/root/repo/src/gen/workload.cc" "src/CMakeFiles/simsel.dir/gen/workload.cc.o" "gcc" "src/CMakeFiles/simsel.dir/gen/workload.cc.o.d"
  "/root/repo/src/gen/zipf.cc" "src/CMakeFiles/simsel.dir/gen/zipf.cc.o" "gcc" "src/CMakeFiles/simsel.dir/gen/zipf.cc.o.d"
  "/root/repo/src/index/collection.cc" "src/CMakeFiles/simsel.dir/index/collection.cc.o" "gcc" "src/CMakeFiles/simsel.dir/index/collection.cc.o.d"
  "/root/repo/src/index/compressed_lists.cc" "src/CMakeFiles/simsel.dir/index/compressed_lists.cc.o" "gcc" "src/CMakeFiles/simsel.dir/index/compressed_lists.cc.o.d"
  "/root/repo/src/index/dictionary.cc" "src/CMakeFiles/simsel.dir/index/dictionary.cc.o" "gcc" "src/CMakeFiles/simsel.dir/index/dictionary.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/CMakeFiles/simsel.dir/index/inverted_index.cc.o" "gcc" "src/CMakeFiles/simsel.dir/index/inverted_index.cc.o.d"
  "/root/repo/src/index/list_cursor.cc" "src/CMakeFiles/simsel.dir/index/list_cursor.cc.o" "gcc" "src/CMakeFiles/simsel.dir/index/list_cursor.cc.o.d"
  "/root/repo/src/index/stats.cc" "src/CMakeFiles/simsel.dir/index/stats.cc.o" "gcc" "src/CMakeFiles/simsel.dir/index/stats.cc.o.d"
  "/root/repo/src/rel/gram_table.cc" "src/CMakeFiles/simsel.dir/rel/gram_table.cc.o" "gcc" "src/CMakeFiles/simsel.dir/rel/gram_table.cc.o.d"
  "/root/repo/src/rel/hash_aggregate.cc" "src/CMakeFiles/simsel.dir/rel/hash_aggregate.cc.o" "gcc" "src/CMakeFiles/simsel.dir/rel/hash_aggregate.cc.o.d"
  "/root/repo/src/rel/sql_baseline_plan.cc" "src/CMakeFiles/simsel.dir/rel/sql_baseline_plan.cc.o" "gcc" "src/CMakeFiles/simsel.dir/rel/sql_baseline_plan.cc.o.d"
  "/root/repo/src/sim/bm25.cc" "src/CMakeFiles/simsel.dir/sim/bm25.cc.o" "gcc" "src/CMakeFiles/simsel.dir/sim/bm25.cc.o.d"
  "/root/repo/src/sim/idf.cc" "src/CMakeFiles/simsel.dir/sim/idf.cc.o" "gcc" "src/CMakeFiles/simsel.dir/sim/idf.cc.o.d"
  "/root/repo/src/sim/measure.cc" "src/CMakeFiles/simsel.dir/sim/measure.cc.o" "gcc" "src/CMakeFiles/simsel.dir/sim/measure.cc.o.d"
  "/root/repo/src/sim/setops.cc" "src/CMakeFiles/simsel.dir/sim/setops.cc.o" "gcc" "src/CMakeFiles/simsel.dir/sim/setops.cc.o.d"
  "/root/repo/src/sim/tfidf.cc" "src/CMakeFiles/simsel.dir/sim/tfidf.cc.o" "gcc" "src/CMakeFiles/simsel.dir/sim/tfidf.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/simsel.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/simsel.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/codec.cc" "src/CMakeFiles/simsel.dir/storage/codec.cc.o" "gcc" "src/CMakeFiles/simsel.dir/storage/codec.cc.o.d"
  "/root/repo/src/storage/paged_file.cc" "src/CMakeFiles/simsel.dir/storage/paged_file.cc.o" "gcc" "src/CMakeFiles/simsel.dir/storage/paged_file.cc.o.d"
  "/root/repo/src/storage/posting_store.cc" "src/CMakeFiles/simsel.dir/storage/posting_store.cc.o" "gcc" "src/CMakeFiles/simsel.dir/storage/posting_store.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/simsel.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/simsel.dir/text/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
