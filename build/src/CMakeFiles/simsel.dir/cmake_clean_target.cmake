file(REMOVE_RECURSE
  "libsimsel.a"
)
