# Empty compiler generated dependencies file for simsel.
# This may be replaced when dependencies are built.
